"""HTTP integration: the full wire loop against a live ServiceThread.

The contract under test is the ISSUE's hard one: a report served over
HTTP is bit-identical to direct engine execution of the same request;
overload answers 429 + Retry-After immediately (never hangs); malformed
specs get structured 400 bodies.
"""

import http.client
import json

import pytest

from repro import api
from repro.service import JobManager, ServiceThread

from tests.service.conftest import make_request


@pytest.fixture
def service():
    """A live server with two real workers."""
    handle = ServiceThread(JobManager(workers=2)).start()
    yield handle
    handle.stop()


@pytest.fixture
def saturated_service():
    """A live server with zero workers: queued jobs never drain, so
    admission decisions are deterministic."""
    handle = ServiceThread(
        JobManager(workers=0, per_tenant_limit=2, total_limit=3)
    ).start()
    yield handle
    handle.stop()


def http_call(handle, method, path, body=None):
    conn = http.client.HTTPConnection(
        handle.server.host, handle.server.port, timeout=30
    )
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, dict(response.headers), response.read()
    finally:
        conn.close()


def direct_bytes(request: api.AuditRequest) -> bytes:
    result = api.execute_request(request)
    return (
        api.report_for_request(request, result.audit, result.structural_hash)
        .to_json()
        .encode("utf-8")
    )


class TestRoundTrip:
    def test_served_report_is_bit_identical_to_direct_engine(self, service):
        request = make_request(algorithm="sampling", rounds=2000, seed=21)
        status, headers, body = http_call(
            service, "POST", "/v1/audits", request.to_json()
        )
        assert status == 202
        submitted = api.JobStatus.from_json(body)
        assert headers["Location"] == f"/v1/jobs/{submitted.job_id}"
        finished = service.server.manager.wait(submitted.job_id, timeout=60)
        assert finished.state == "done"
        status, _, served = http_call(
            service, "GET", f"/v1/jobs/{submitted.job_id}/report"
        )
        assert status == 200
        assert served == direct_bytes(request)

    def test_repeat_post_is_pure_cache_hit(self, service):
        request = make_request(seed=22)
        _, _, first = http_call(
            service, "POST", "/v1/audits", request.to_json()
        )
        service.server.manager.wait(
            api.JobStatus.from_json(first).job_id, timeout=60
        )
        status, _, second = http_call(
            service, "POST", "/v1/audits", request.to_json()
        )
        assert status == 200  # born done, never queued
        snapshot = api.JobStatus.from_json(second)
        assert snapshot.cached is True
        assert snapshot.state == "done"

    def test_finished_report_served_content_addressed(self, service):
        request = make_request(seed=23)
        _, _, body = http_call(
            service, "POST", "/v1/audits", request.to_json()
        )
        job_id = api.JobStatus.from_json(body).job_id
        finished = service.server.manager.wait(job_id, timeout=60)
        status, _, by_key = http_call(
            service, "GET", f"/v1/reports/{finished.report_key}"
        )
        assert status == 200
        _, _, by_job = http_call(
            service, "GET", f"/v1/jobs/{job_id}/report"
        )
        assert by_key == by_job

    def test_event_stream_is_canonical_jsonl(self, service):
        request = make_request(seed=24)
        _, _, body = http_call(
            service, "POST", "/v1/audits", request.to_json()
        )
        job_id = api.JobStatus.from_json(body).job_id
        status, headers, payload = http_call(
            service, "GET", f"/v1/jobs/{job_id}/events"
        )
        assert status == 200
        assert headers["Content-Type"] == "application/jsonl"
        events = [
            json.loads(line)
            for line in payload.decode().strip().splitlines()
        ]
        assert all(e["kind"] == "event" for e in events)
        assert all(e["schema_version"] == api.SCHEMA_VERSION for e in events)
        assert events[0]["event"] == "submitted"
        assert events[-1]["event"] in ("done", "failed", "cancelled")
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))


class TestBackpressure:
    def test_tenant_overload_answers_429_immediately(self, saturated_service):
        for seed in (1, 2):
            status, _, _ = http_call(
                saturated_service,
                "POST",
                "/v1/audits",
                make_request(seed=seed, tenant="acme").to_json(),
            )
            assert status == 202
        status, headers, body = http_call(
            saturated_service,
            "POST",
            "/v1/audits",
            make_request(seed=3, tenant="acme").to_json(),
        )
        assert status == 429
        assert float(headers["Retry-After"]) >= 1
        error = json.loads(body)
        assert error["kind"] == "error"
        assert error["error"]["code"] == "tenant-overloaded"

    def test_other_tenants_keep_being_admitted(self, saturated_service):
        for seed in (1, 2):
            http_call(
                saturated_service,
                "POST",
                "/v1/audits",
                make_request(seed=seed, tenant="acme").to_json(),
            )
        status, _, _ = http_call(
            saturated_service,
            "POST",
            "/v1/audits",
            make_request(seed=4, tenant="globex").to_json(),
        )
        assert status == 202
        # ...until the global bound trips, for anyone.
        status, _, body = http_call(
            saturated_service,
            "POST",
            "/v1/audits",
            make_request(seed=5, tenant="initech").to_json(),
        )
        assert status == 429
        assert json.loads(body)["error"]["code"] == "overloaded"


class TestErrors:
    def test_malformed_spec_is_structured_400(self, service):
        status, _, body = http_call(
            service, "POST", "/v1/audits", b'{"schema_version": 1}'
        )
        assert status == 400
        error = json.loads(body)
        assert error["kind"] == "error"
        assert error["error"]["code"] == "bad-request"
        assert "servers" in error["error"]["message"]

    def test_invalid_json_is_structured_400(self, service):
        status, _, body = http_call(
            service, "POST", "/v1/audits", b"not json {"
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "bad-request"

    def test_wrong_schema_version_is_400(self, service):
        payload = make_request().to_dict()
        payload["schema_version"] = 999
        status, _, body = http_call(
            service, "POST", "/v1/audits", json.dumps(payload)
        )
        assert status == 400
        assert "schema_version" in json.loads(body)["error"]["message"]

    def test_unknown_job_is_404(self, service):
        status, _, body = http_call(service, "GET", "/v1/jobs/job-999999")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not-found"

    def test_unknown_path_is_404_and_wrong_method_405(self, service):
        status, _, _ = http_call(service, "GET", "/v2/nope")
        assert status == 404
        status, _, _ = http_call(service, "DELETE", "/v1/audits")
        assert status == 405

    def test_report_of_unfinished_job_is_not_ready(self, saturated_service):
        _, _, body = http_call(
            saturated_service,
            "POST",
            "/v1/audits",
            make_request(seed=31).to_json(),
        )
        job_id = api.JobStatus.from_json(body).job_id
        status, headers, body = http_call(
            saturated_service, "GET", f"/v1/jobs/{job_id}/report"
        )
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not-ready"
        assert "Retry-After" in headers


class TestOperational:
    def test_healthz(self, service):
        status, _, body = http_call(service, "GET", "/v1/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_cancel_endpoint(self, saturated_service):
        _, _, body = http_call(
            saturated_service,
            "POST",
            "/v1/audits",
            make_request(seed=41).to_json(),
        )
        job_id = api.JobStatus.from_json(body).job_id
        status, _, body = http_call(
            saturated_service, "POST", f"/v1/jobs/{job_id}/cancel"
        )
        assert status == 200
        assert api.JobStatus.from_json(body).state == "cancelled"

    def test_keep_alive_serves_multiple_requests(self, service):
        conn = http.client.HTTPConnection(
            service.server.host, service.server.port, timeout=30
        )
        try:
            for _ in range(3):
                conn.request("GET", "/v1/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()

    def test_stop_drains_in_flight_jobs(self):
        handle = ServiceThread(JobManager(workers=1)).start()
        _, _, body = http_call(
            handle,
            "POST",
            "/v1/audits",
            make_request(algorithm="sampling", rounds=20_000, seed=51)
            .to_json(),
        )
        job_id = api.JobStatus.from_json(body).job_id
        handle.stop(drain=True)
        # Post-drain the job is finished, not abandoned.
        assert handle.server.manager.status(job_id).state == "done"
