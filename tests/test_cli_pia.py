"""Tests for the `indaas pia` subcommand and the importance helper."""

import json

import pytest

from repro import AuditSpec, SIAAuditor
from repro.cli import main
from repro.depdb import DepDB, NetworkDependency
from repro.errors import AnalysisError


class TestPiaCommand:
    @pytest.fixture
    def sets_file(self, tmp_path):
        path = tmp_path / "sets.json"
        path.write_text(
            json.dumps(
                {
                    "CloudA": ["x", "shared"],
                    "CloudB": ["y", "shared"],
                    "CloudC": ["z"],
                }
            )
        )
        return str(path)

    def test_plaintext_audit(self, sets_file, capsys):
        assert main(["pia", sets_file, "--protocol", "plaintext"]) == 0
        out = capsys.readouterr().out
        assert "CloudA & CloudB" in out
        # The disjoint pair ranks first.
        first_line = [
            line for line in out.splitlines() if line.startswith("1")
        ][0]
        assert "CloudC" in first_line

    def test_psop_audit(self, sets_file, capsys):
        assert main(
            ["pia", sets_file, "--protocol", "psop", "--group-bits", "768"]
        ) == 0
        assert "Jaccard" in capsys.readouterr().out

    def test_three_way(self, sets_file, capsys):
        assert main(
            ["pia", sets_file, "--protocol", "plaintext", "--ways", "3"]
        ) == 0

    def test_timings_line(self, sets_file, capsys):
        assert main(
            [
                "pia", sets_file, "--protocol", "psop",
                "--group-bits", "768", "--timings",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "timings:" in out
        assert "wire bytes" in out

    def test_serial_matches_fast_ranking(self, sets_file, capsys):
        assert main(
            [
                "pia", sets_file, "--protocol", "psop",
                "--group-bits", "768", "--serial",
            ]
        ) == 0
        serial_out = capsys.readouterr().out
        assert main(
            ["pia", sets_file, "--protocol", "psop", "--group-bits", "768"]
        ) == 0
        fast_out = capsys.readouterr().out
        assert serial_out == fast_out

    def test_serial_with_workers_rejected(self, sets_file, capsys):
        assert main(
            ["pia", sets_file, "--serial", "--workers", "2"]
        ) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_workers_pipeline(self, sets_file, capsys):
        assert main(
            [
                "pia", sets_file, "--protocol", "psop",
                "--group-bits", "768", "--workers", "2", "--timings",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Jaccard" in out
        assert "workers=2" in out

    def test_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        assert main(["pia", str(path)]) == 1

    def test_non_mapping_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        assert main(["pia", str(path)]) == 1


class TestComponentImportanceHelper:
    def make_auditor(self, weigher):
        db = DepDB()
        db.add(NetworkDependency("S1", "Internet", ("tor1", "agg")))
        db.add(NetworkDependency("S2", "Internet", ("tor2", "agg")))
        return SIAAuditor(db, weigher=weigher)

    def test_ranked_entries(self):
        auditor = self.make_auditor(lambda k, i: 0.1)
        entries = auditor.component_importance(
            AuditSpec(deployment="d", servers=("S1", "S2")), top=3
        )
        assert entries[0].component == "device:agg"  # the shared switch
        assert len(entries) == 3

    def test_requires_weigher(self):
        auditor = self.make_auditor(None)
        with pytest.raises(AnalysisError, match="weigher"):
            auditor.component_importance(
                AuditSpec(deployment="d", servers=("S1", "S2"))
            )
