"""Tests for the indaas command line."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_case_subcommand(self):
        args = build_parser().parse_args(["case", "network", "--rounds", "9"])
        assert args.study == "network"
        assert args.rounds == 9

    def test_topology_subcommand(self):
        args = build_parser().parse_args(["topology", "--ports", "24"])
        assert args.ports == 24

    def test_audit_subcommand(self):
        args = build_parser().parse_args(
            ["audit", "db.txt", "--servers", "S1,S2"]
        )
        assert args.depdb == "db.txt"

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestMain:
    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "0.224" in out

    def test_topology_table3_row(self, capsys):
        assert main(["topology", "--ports", "16"]) == 0
        out = capsys.readouterr().out
        assert "1344" in out

    def test_case_hardware(self, capsys):
        assert main(["case", "hardware"]) == 0
        out = capsys.readouterr().out
        assert "Server2 & Server3" in out
        assert "matches paper: True" in out

    def test_audit_over_depdb_file(self, tmp_path, capsys):
        depdb = tmp_path / "dep.txt"
        depdb.write_text(
            '<src="S1" dst="Internet" route="ToR1,Core1"/>\n'
            '<src="S2" dst="Internet" route="ToR1,Core1"/>\n'
        )
        assert main(
            ["audit", str(depdb), "--servers", "S1,S2"]
        ) == 0
        out = capsys.readouterr().out
        assert "device:ToR1" in out
        assert "unexpected risk groups" in out

    def test_audit_sampling_algorithm(self, tmp_path, capsys):
        depdb = tmp_path / "dep.txt"
        depdb.write_text('<src="S1" dst="Internet" route="ToR1"/>\n')
        assert main(
            [
                "audit",
                str(depdb),
                "--servers",
                "S1",
                "--algorithm",
                "sampling",
                "--rounds",
                "500",
            ]
        ) == 0

    def test_audit_adaptive_flag(self, tmp_path, capsys):
        depdb = tmp_path / "dep.txt"
        depdb.write_text(
            '<src="S1" dst="Internet" route="ToR1,Core1"/>\n'
            '<src="S2" dst="Internet" route="ToR1,Core1"/>\n'
        )
        args = build_parser().parse_args(
            ["audit", str(depdb), "--servers", "S1,S2", "--adaptive"]
        )
        assert args.adaptive is True
        assert main(
            [
                "audit",
                str(depdb),
                "--servers",
                "S1,S2",
                "--algorithm",
                "sampling",
                "--rounds",
                "2000",
                "--adaptive",
            ]
        ) == 0
        assert "device:ToR1" in capsys.readouterr().out

    def test_audit_rejects_bogus_negative_workers(self, tmp_path, capsys):
        depdb = tmp_path / "dep.txt"
        depdb.write_text('<src="S1" dst="Internet" route="ToR1"/>\n')
        code = main(
            [
                "audit",
                str(depdb),
                "--servers",
                "S1",
                "--algorithm",
                "sampling",
                "--rounds",
                "500",
                "--workers=-5",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "exactly -1" in err

    def test_error_paths_return_nonzero(self, tmp_path, capsys):
        depdb = tmp_path / "dep.txt"
        depdb.write_text('<src="S1" dst="Internet" route="ToR1"/>\n')
        # Unknown server -> builder produces host-only graph; fine.  An
        # empty server list is a parse-level problem though:
        code = main(["audit", str(depdb), "--servers", ","])
        assert code == 1
