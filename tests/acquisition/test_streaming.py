"""Streaming ingestion: stream()/collect() fallbacks and adapt_into."""

import pytest

from repro.acquisition import DependencyAcquisitionModule
from repro.depdb import DepDB, HardwareDependency, SQLiteBackend
from repro.errors import AcquisitionError

RECORDS = [
    HardwareDependency("S1", "CPU", "X5550"),
    HardwareDependency("S1", "Disk", "WD-1TB"),
    HardwareDependency("S2", "CPU", "X5550"),
]


class StreamOnly(DependencyAcquisitionModule):
    kind = "hardware"

    def __init__(self, records=RECORDS):
        self._records = records
        self.pulled = 0

    def stream(self):
        for record in self._records:
            self.pulled += 1
            yield record


class CollectOnly(DependencyAcquisitionModule):
    kind = "hardware"

    def collect(self):
        return list(RECORDS)


class Neither(DependencyAcquisitionModule):
    kind = "hardware"


class TestFallbacks:
    def test_collect_only_module_streams(self):
        assert list(CollectOnly().stream()) == RECORDS

    def test_stream_only_module_collects(self):
        assert StreamOnly().collect() == RECORDS

    def test_neither_implemented_is_a_clean_error(self):
        with pytest.raises(AcquisitionError, match="neither stream"):
            list(Neither().stream())
        with pytest.raises(AcquisitionError, match="neither stream"):
            Neither().collect()


class TestAdaptInto:
    def test_streams_without_materialising(self):
        # The module is consumed lazily: a tiny batch size forces
        # multiple ingest transactions over one generator pass.
        module = StreamOnly()
        db = DepDB()
        assert module.adapt_into(db, batch_size=1) == 3
        assert module.pulled == 3
        assert db.records() == RECORDS

    def test_counts_only_new_records(self):
        db = DepDB([RECORDS[0]])
        assert StreamOnly().adapt_into(db) == 2

    def test_all_duplicates_is_not_an_error(self):
        db = DepDB(RECORDS)
        assert StreamOnly().adapt_into(db) == 0

    def test_empty_stream_rejected(self):
        with pytest.raises(AcquisitionError, match="no records"):
            StreamOnly(records=[]).adapt_into(DepDB())

    def test_streams_into_sqlite_backend(self, tmp_path):
        path = tmp_path / "dep.sqlite"
        with DepDB(backend=SQLiteBackend(path)) as db:
            assert StreamOnly().adapt_into(db, batch_size=2) == 3
        with DepDB.sqlite(path) as reopened:
            assert reopened.records() == RECORDS

    def test_bad_batch_size_rejected(self):
        from repro.errors import DependencyDataError

        with pytest.raises(DependencyDataError, match="batch_size"):
            StreamOnly().adapt_into(DepDB(), batch_size=0)


class TestBuiltinCollectorsStream:
    def test_builtin_collectors_expose_generators(self):
        import inspect

        from repro.acquisition.hardware import HardwareInventoryCollector
        from repro.acquisition.logs import LogMiningCollector
        from repro.acquisition.network import (
            NetworkDependencyCollector,
            TrafficSampledCollector,
        )
        from repro.acquisition.software import SoftwarePackageCollector

        for cls in (
            NetworkDependencyCollector,
            TrafficSampledCollector,
            HardwareInventoryCollector,
            SoftwarePackageCollector,
            LogMiningCollector,
        ):
            assert inspect.isgeneratorfunction(cls.stream), cls.__name__
