"""Unit tests for the DAM plug-in framework."""

import pytest

from repro.acquisition import (
    DependencyAcquisitionModule,
    acquire_into,
    create_module,
    module_names,
    register_module,
)
from repro.depdb import DepDB, HardwareDependency
from repro.errors import AcquisitionError


class FakeModule(DependencyAcquisitionModule):
    kind = "hardware"

    def __init__(self, records=None):
        self.records = records if records is not None else [
            HardwareDependency("S1", "CPU", "X")
        ]

    def collect(self):
        return list(self.records)


class TestRegistry:
    def test_builtin_modules_registered(self):
        names = module_names()
        assert "network.topology" in names
        assert "network.traffic" in names
        assert "hardware.inventory" in names
        assert "software.apt" in names

    def test_create_unknown_module(self):
        with pytest.raises(AcquisitionError, match="unknown acquisition"):
            create_module("nope")

    def test_register_duplicate_rejected(self):
        with pytest.raises(AcquisitionError, match="already registered"):
            register_module("hardware.inventory")(FakeModule)

    def test_register_non_module_rejected(self):
        with pytest.raises(AcquisitionError):
            register_module("some.new.name")(dict)

    def test_create_builtin(self):
        module = create_module(
            "hardware.inventory", inventory={"S1": [("CPU", "X")]}
        )
        assert module.kind == "hardware"


class TestCollectInto:
    def test_collect_into_counts(self):
        db = DepDB()
        assert FakeModule().collect_into(db) == 1
        assert db.counts()["hardware"] == 1

    def test_empty_collection_rejected(self):
        with pytest.raises(AcquisitionError, match="no records"):
            FakeModule(records=[]).collect_into(DepDB())

    def test_acquire_into_many(self):
        db = DepDB()
        counts = acquire_into(
            db,
            [
                FakeModule(),
                FakeModule([HardwareDependency("S2", "Disk", "Y")]),
            ],
        )
        assert sum(counts.values()) == 2
