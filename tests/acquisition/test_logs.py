"""Unit tests for console-log mining (§5.1 extension)."""

import pytest

from repro.acquisition import LogMiningCollector, generate_logs
from repro.depdb import DepDB, NetworkDependency, SoftwareDependency
from repro.errors import AcquisitionError

HOSTS = {"frontend": "S1", "authdb": "S2", "cache": "S3"}


class TestGenerateLogs:
    def test_counts_match(self):
        lines = generate_logs(
            {("frontend", "authdb"): 5},
            {("frontend", "libssl@1.0.1"): 3},
            noise_lines=4,
            seed=0,
        )
        assert len(lines) == 12

    def test_deterministic(self):
        a = generate_logs({("x", "y"): 2}, {}, seed=1)
        assert a == generate_logs({("x", "y"): 2}, {}, seed=1)


class TestLogMiningCollector:
    def make_lines(self):
        return generate_logs(
            {("frontend", "authdb"): 6, ("frontend", "cache"): 1},
            {("frontend", "libssl@1.0.1"): 4, ("authdb", "libc6@2.19"): 2},
            noise_lines=8,
            seed=2,
        )

    def test_supported_edges_collected(self):
        collector = LogMiningCollector(
            self.make_lines(), host_of=HOSTS, min_support=2
        )
        records = collector.collect()
        network = [r for r in records if isinstance(r, NetworkDependency)]
        software = [r for r in records if isinstance(r, SoftwareDependency)]
        assert any(
            r.src == "S1" and r.route == ("authdb",) for r in network
        )
        assert any(
            r.pgm == "frontend" and "libssl@1.0.1" in r.dep for r in software
        )

    def test_low_support_edges_filtered(self):
        collector = LogMiningCollector(
            self.make_lines(), host_of=HOSTS, min_support=2
        )
        records = collector.collect()
        # frontend->cache appeared once: below the support threshold.
        assert not any(
            isinstance(r, NetworkDependency) and r.route == ("cache",)
            for r in records
        )

    def test_failed_calls_can_be_excluded(self):
        lines = [
            "t INFO svc=a call dst=b status=error",
            "t INFO svc=a call dst=b status=error",
        ]
        strict = LogMiningCollector(
            lines, host_of={"a": "H1", "b": "H2"},
            min_support=1, include_failed_calls=False,
        )
        with pytest.raises(AcquisitionError, match="min_support"):
            strict.collect()
        lenient = LogMiningCollector(
            lines, host_of={"a": "H1", "b": "H2"}, min_support=1
        )
        assert lenient.collect()

    def test_noise_is_ignored(self):
        collector = LogMiningCollector(
            ["garbage line", "t INFO svc=a call dst=b status=ok"] * 2,
            host_of={"a": "H1", "b": "H2"},
            min_support=1,
        )
        calls, packages = collector.mine()
        assert calls == {("a", "b"): 2}
        assert not packages

    def test_unknown_service_host(self):
        collector = LogMiningCollector(
            ["t INFO svc=ghost call dst=b status=ok"] * 2,
            host_of={"b": "H2"},
            min_support=1,
        )
        with pytest.raises(AcquisitionError, match="no host mapping"):
            collector.collect()

    def test_collect_into_depdb(self):
        db = DepDB()
        LogMiningCollector(
            self.make_lines(), host_of=HOSTS, min_support=2
        ).collect_into(db)
        assert db.network_paths("S1")

    def test_validation(self):
        with pytest.raises(AcquisitionError):
            LogMiningCollector([], host_of={})
        with pytest.raises(AcquisitionError):
            LogMiningCollector(["x"], host_of={}, min_support=0)
