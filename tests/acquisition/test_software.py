"""Unit tests for the software package collector (apt-rdepends substitute)."""

import pytest

from repro.acquisition import SoftwarePackageCollector
from repro.depdb import DepDB
from repro.errors import AcquisitionError
from repro.swinventory import Package, PackageUniverse


@pytest.fixture
def universe() -> PackageUniverse:
    return PackageUniverse(
        [
            Package("riak", "2.0", depends=("erlang", "libc6")),
            Package("erlang", "17.0", depends=("libc6", "ncurses")),
            Package("libc6", "2.19"),
            Package("ncurses", "5.9"),
            Package("standalone", "1.0"),
        ]
    )


class TestSoftwareCollector:
    def test_transitive_closure_collected(self, universe):
        collector = SoftwarePackageCollector(
            universe, {"S1": ["riak"]}, use_identifiers=False
        )
        records = collector.collect()
        assert len(records) == 1
        assert set(records[0].dep) == {"erlang", "libc6", "ncurses"}

    def test_identifiers_mode(self, universe):
        records = SoftwarePackageCollector(
            universe, {"S1": ["riak"]}
        ).collect()
        assert "libc6@2.19" in records[0].dep
        assert "erlang@17.0" in records[0].dep

    def test_dependency_free_program_lists_itself(self, universe):
        records = SoftwarePackageCollector(
            universe, {"S1": ["standalone"]}
        ).collect()
        assert records[0].dep == ("standalone@1.0",)

    def test_multiple_servers_and_programs(self, universe):
        collector = SoftwarePackageCollector(
            universe, {"S1": ["riak"], "S2": ["erlang", "standalone"]}
        )
        records = collector.collect()
        assert {(r.hw, r.pgm) for r in records} == {
            ("S1", "riak"),
            ("S2", "erlang"),
            ("S2", "standalone"),
        }

    def test_unknown_program_rejected(self, universe):
        with pytest.raises(AcquisitionError, match="not in"):
            SoftwarePackageCollector(universe, {"S1": ["ghost"]})

    def test_empty_program_list_rejected(self, universe):
        with pytest.raises(AcquisitionError):
            SoftwarePackageCollector(universe, {"S1": []})

    def test_no_servers_rejected(self, universe):
        with pytest.raises(AcquisitionError):
            SoftwarePackageCollector(universe, {})

    def test_collect_into_depdb(self, universe):
        db = DepDB()
        SoftwarePackageCollector(universe, {"S1": ["riak"]}).collect_into(db)
        assert db.software_on("S1", programs=["riak"])
