"""Unit tests for the network dependency collectors (NSDMiner substitute)."""

import pytest

from repro.acquisition import NetworkDependencyCollector, TrafficSampledCollector
from repro.depdb import DepDB
from repro.errors import AcquisitionError
from repro.topology import FatTreeConfig, fat_tree, lab_cloud


@pytest.fixture(scope="module")
def lab():
    return lab_cloud()


class TestTopologyMode:
    def test_collects_all_ecmp_routes(self, lab):
        collector = NetworkDependencyCollector(lab, servers=["Server1"])
        records = collector.collect()
        routes = {r.route for r in records}
        assert routes == {("Switch1", "Core1"), ("Switch1", "Core2")}

    def test_defaults_to_all_servers(self, lab):
        records = NetworkDependencyCollector(lab).collect()
        assert {r.src for r in records} == {
            "Server1",
            "Server2",
            "Server3",
            "Server4",
        }

    def test_static_routes_override(self, lab):
        collector = NetworkDependencyCollector(
            lab,
            servers=["Server1"],
            static_routes={"Server1": [("Switch1", "Core1")]},
        )
        records = collector.collect()
        assert len(records) == 1
        assert records[0].route == ("Switch1", "Core1")

    def test_static_routes_must_cover_servers(self, lab):
        collector = NetworkDependencyCollector(
            lab, servers=["Server1"], static_routes={"Server2": []}
        )
        with pytest.raises(AcquisitionError, match="no static route"):
            collector.collect()

    def test_max_routes(self):
        topo = fat_tree(FatTreeConfig(ports=8))
        collector = NetworkDependencyCollector(
            topo, servers=["srv-p0-t0-0"], max_routes=3
        )
        assert len(collector.collect()) == 3

    def test_collect_into_depdb(self, lab):
        db = DepDB()
        NetworkDependencyCollector(lab).collect_into(db)
        assert db.counts()["network"] == 8  # 4 servers x 2 routes

    def test_no_servers_rejected(self):
        from repro.topology import DeviceType, Topology

        topo = Topology()
        topo.add_device("x", DeviceType.CORE)
        with pytest.raises(AcquisitionError, match="no servers"):
            NetworkDependencyCollector(topo)


class TestTrafficMode:
    def test_observed_routes_subset_of_real(self):
        topo = fat_tree(FatTreeConfig(ports=8))
        full = {
            r.route
            for r in NetworkDependencyCollector(
                topo, servers=["srv-p0-t0-0"]
            ).collect()
        }
        sampled = TrafficSampledCollector(
            topo, servers=["srv-p0-t0-0"], flows_per_server=4, seed=0
        ).collect()
        assert {r.route for r in sampled} <= full
        assert 1 <= len(sampled) <= 4

    def test_many_flows_discover_everything(self, lab):
        sampled = TrafficSampledCollector(
            lab, servers=["Server1"], flows_per_server=200, seed=1
        ).collect()
        assert len(sampled) == 2

    def test_deterministic_for_seed(self, lab):
        a = TrafficSampledCollector(lab, flows_per_server=3, seed=5).collect()
        b = TrafficSampledCollector(lab, flows_per_server=3, seed=5).collect()
        assert a == b

    def test_discovery_ratio_monotone_in_flows(self, lab):
        low = TrafficSampledCollector(lab, flows_per_server=1, seed=0)
        high = TrafficSampledCollector(lab, flows_per_server=32, seed=0)
        assert low.discovery_ratio() < high.discovery_ratio() <= 1.0

    def test_invalid_flow_count(self, lab):
        with pytest.raises(AcquisitionError):
            TrafficSampledCollector(lab, flows_per_server=0)
