"""Unit tests for the hardware inventory collector (lshw substitute)."""

import pytest

from repro.acquisition import HardwareInventoryCollector
from repro.depdb import DepDB
from repro.errors import AcquisitionError
from repro.topology.lab import LAB_HARDWARE


class TestHardwareCollector:
    def test_collects_all_components(self):
        records = HardwareInventoryCollector(LAB_HARDWARE).collect()
        assert len(records) == sum(len(v) for v in LAB_HARDWARE.values())

    def test_record_fields(self):
        records = HardwareInventoryCollector(
            {"S1": [("CPU", "X5550"), ("Disk", "SED900")]}
        ).collect()
        assert records[0].hw == "S1"
        assert records[0].type == "CPU"
        assert records[0].dep == "X5550"

    def test_server_filter(self):
        collector = HardwareInventoryCollector(
            LAB_HARDWARE, servers=["Server2"]
        )
        assert {r.hw for r in collector.collect()} == {"Server2"}

    def test_unknown_server_rejected(self):
        with pytest.raises(AcquisitionError, match="missing"):
            HardwareInventoryCollector(LAB_HARDWARE, servers=["ghost"])

    def test_empty_inventory_rejected(self):
        with pytest.raises(AcquisitionError):
            HardwareInventoryCollector({})

    def test_empty_listing_rejected(self):
        with pytest.raises(AcquisitionError, match="empty hardware"):
            HardwareInventoryCollector({"S1": []}).collect()

    def test_collect_into_depdb(self):
        db = DepDB()
        HardwareInventoryCollector(LAB_HARDWARE).collect_into(db)
        assert db.hardware_of("Server3")
