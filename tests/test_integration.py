"""Cross-module integration tests: the full Figure-1 lifecycle.

One story, end to end: a provider builds its substrate, acquisition
modules fill DepDBs, the agent audits (SIA and PIA), configuration
drifts, the periodic audit catches the regression, and the audit trail
catches a cheating provider.
"""

import pytest

from repro import (
    AuditSpec,
    DetailLevel,
    RGAlgorithm,
    SIAAuditor,
    minimal_risk_groups,
)
from repro.acquisition import (
    HardwareInventoryCollector,
    LogMiningCollector,
    NetworkDependencyCollector,
    SoftwarePackageCollector,
    acquire_into,
    generate_logs,
)
from repro.analysis import drift_report
from repro.core.bdd import compile_graph
from repro.depdb import DepDB
from repro.hwinventory import generate_inventory
from repro.privacy import AuditTrail, PIAAuditor, meta_audit
from repro.swinventory import generate_universe
from repro.topology import FatTreeConfig, fat_tree, fat_tree_routes


@pytest.fixture(scope="module")
def fleet_depdb() -> tuple[DepDB, list[str]]:
    """A small fat-tree cloud with all four acquisition modules."""
    config = FatTreeConfig(ports=4)
    topology = fat_tree(config)
    servers = [f"srv-p{p}-t0-0" for p in range(3)]
    static = {s: fat_tree_routes(config, s) for s in servers}

    universe = generate_universe(packages=60, seed=5)
    programs = [n for n in universe.names() if n.startswith("lib-l")][:3]
    inventory = generate_inventory(servers, batch_size=2, seed=5)

    logs = generate_logs(
        {("frontend", "authdb"): 5},
        {("frontend", f"{programs[0]}@1.0"): 3},
        seed=5,
    )
    depdb = DepDB()
    acquire_into(
        depdb,
        [
            NetworkDependencyCollector(
                topology, servers=servers, static_routes=static
            ),
            HardwareInventoryCollector(inventory.as_mapping()),
            SoftwarePackageCollector(
                universe, {s: [programs[i]] for i, s in enumerate(servers)}
            ),
            LogMiningCollector(
                logs,
                host_of={"frontend": servers[0], "authdb": servers[1]},
                min_support=2,
            ),
        ],
    )
    return depdb, servers


class TestFullSIALifecycle:
    def test_every_level_of_detail_audits(self, fleet_depdb):
        depdb, servers = fleet_depdb
        auditor = SIAAuditor(depdb, weigher=lambda k, i: 0.05)
        for level in DetailLevel:
            audit = auditor.audit_deployment(
                AuditSpec(
                    deployment=f"lvl-{level.value}",
                    servers=tuple(servers[:2]),
                    level=level,
                )
            )
            assert audit.ranking
            if level is DetailLevel.COMPONENT_SET:
                # The component-set level deliberately discards weights.
                assert audit.failure_probability is None
            else:
                assert audit.failure_probability is not None

    def test_minimal_sampling_and_bdd_agree(self, fleet_depdb):
        depdb, servers = fleet_depdb
        auditor = SIAAuditor(depdb)
        spec = AuditSpec(deployment="agree", servers=tuple(servers[:2]))
        graph = auditor.build_graph(spec)
        exact = minimal_risk_groups(graph)
        via_bdd = compile_graph(graph).minimal_cut_sets()
        assert exact == via_bdd
        sampled = auditor.audit_deployment(
            AuditSpec(
                deployment="agree",
                servers=tuple(servers[:2]),
                algorithm=RGAlgorithm.SAMPLING,
                sampling_rounds=8_000,
                seed=1,
            )
        )
        assert {e.events for e in sampled.ranking} <= set(exact)

    def test_batch_hardware_sharing_is_flagged(self, fleet_depdb):
        """Servers 0 and 1 share a procurement batch: common models must
        appear as unexpected RGs."""
        depdb, servers = fleet_depdb
        auditor = SIAAuditor(depdb)
        audit = auditor.audit_deployment(
            AuditSpec(deployment="batch", servers=tuple(servers[:2]))
        )
        singleton_kinds = {
            next(iter(e.events)).split(":")[0]
            for e in audit.ranking
            if e.size == 1
        }
        assert "hw" in singleton_kinds

    def test_drift_catches_recabling(self, fleet_depdb):
        depdb, servers = fleet_depdb
        spec = AuditSpec(deployment="drift", servers=tuple(servers[:2]))
        # Drift: server 1 gains a path through server 0's ToR.
        drifted = DepDB.loads(depdb.dumps())
        from repro.depdb import NetworkDependency

        drifted.add(
            NetworkDependency(
                servers[1], "Internet", ("pod0-tor0", "pod0-agg0", "core-0-0")
            )
        )
        report = drift_report(depdb, drifted, spec)
        assert not report.diff.is_empty
        # The added path is redundant (ANDed), so no regression — scores
        # move but no new unexpected singleton appears from re-cabling.
        assert not report.regressed


class TestFullPIALifecycle:
    def test_private_audit_with_trail(self, fleet_depdb):
        depdb, servers = fleet_depdb
        # Each "provider" is one server's software view.
        component_sets = {}
        for server in servers:
            records = depdb.software_on(server)
            components = sorted(
                {pkg for record in records for pkg in record.dep}
            )
            if components:
                component_sets[server] = components
        assert len(component_sets) >= 2
        auditor = PIAAuditor(component_sets, protocol="plaintext")
        report = auditor.audit(ways=2, providers=list(component_sets))
        assert report.entries

        trail = AuditTrail({name: b"key-" + name.encode() for name in component_sets})
        for name, components in component_sets.items():
            trail.record(name, "run-1", components, salt=f"salt-{name}")
        for name, components in component_sets.items():
            finding = meta_audit(
                trail, name, "run-1", components, salt=f"salt-{name}"
            )
            assert finding.honest

        # A cheating provider discloses less than it committed.
        cheater = next(iter(component_sets))
        finding = meta_audit(
            trail,
            cheater,
            "run-1",
            list(component_sets[cheater])[:-1],
            salt=f"salt-{cheater}",
        )
        assert not finding.honest
