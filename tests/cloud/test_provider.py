"""Unit tests for cloud providers as PIA data sources."""

import pytest

from repro.cloud import CloudProvider
from repro.depdb import (
    DepDB,
    HardwareDependency,
    NetworkDependency,
    SoftwareDependency,
)
from repro.errors import SpecificationError


@pytest.fixture
def provider() -> CloudProvider:
    db = DepDB()
    db.add(NetworkDependency("n1", "Internet", ("isp-router-1", "isp-router-2")))
    db.add(HardwareDependency("n1", "Disk", "SED900"))
    db.add(SoftwareDependency("Riak", "n1", ("libc6@2.19", "libssl@1.0")))
    db.add(SoftwareDependency("Nginx", "n2", ("libc6@2.19", "pcre@8.35")))
    return CloudProvider(name="CloudX", depdb=db)


class TestComponentSet:
    def test_default_includes_network_and_software(self, provider):
        components = provider.component_set()
        assert "isp-router-1" in components
        assert "libc6@2.19" in components
        assert "SED900" not in components  # hardware excluded by default

    def test_hardware_opt_in(self, provider):
        provider.include_kinds = ("hardware",)
        assert provider.component_set() == frozenset({"SED900"})

    def test_host_restriction(self, provider):
        components = provider.component_set(hosts=["n2"])
        assert components == frozenset({"libc6@2.19", "pcre@8.35"})

    def test_empty_set_rejected(self, provider):
        with pytest.raises(SpecificationError, match="empty"):
            provider.component_set(hosts=["ghost"])

    def test_multiset_counts_shared_packages(self, provider):
        counts = provider.component_multiset()
        assert counts["libc6@2.19"] == 2  # used by Riak and Nginx
        assert counts["pcre@8.35"] == 1

    def test_invalid_kinds_rejected(self):
        with pytest.raises(SpecificationError):
            CloudProvider(name="X", include_kinds=("quantum",))

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            CloudProvider(name="")
