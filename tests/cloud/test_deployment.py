"""Unit tests for redundancy deployments."""

import pytest

from repro.cloud import RedundancyDeployment, enumerate_deployments
from repro.errors import SpecificationError


class TestRedundancyDeployment:
    def test_name_and_ways(self):
        deployment = RedundancyDeployment(("A", "B", "C"), required=2)
        assert deployment.name == "A & B & C"
        assert deployment.ways == 3
        assert str(deployment) == deployment.name

    @pytest.mark.parametrize(
        "members,required",
        [((), 1), (("A", "A"), 1), (("A",), 2), (("A", "B"), 0)],
    )
    def test_invalid_deployments(self, members, required):
        with pytest.raises(SpecificationError):
            RedundancyDeployment(members, required=required)


class TestEnumerate:
    def test_pairs(self):
        names = [d.name for d in enumerate_deployments(["A", "B", "C"], 2)]
        assert names == ["A & B", "A & C", "B & C"]

    def test_triples_count(self):
        assert len(enumerate_deployments(list("ABCDE"), 3)) == 10

    def test_required_capped_at_ways(self):
        deployments = enumerate_deployments(["A", "B", "C"], 2, required=3)
        assert all(d.required == 2 for d in deployments)

    def test_invalid_ways(self):
        with pytest.raises(SpecificationError):
            enumerate_deployments(["A"], 2)

    def test_duplicate_pool_rejected(self):
        with pytest.raises(SpecificationError):
            enumerate_deployments(["A", "A"], 1)
