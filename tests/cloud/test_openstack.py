"""Unit tests for the OpenStack-like scheduler (§6.2.2)."""

import pytest

from repro.cloud import Host, Scheduler
from repro.errors import PlacementError


def make_scheduler(seed=0) -> Scheduler:
    return Scheduler([Host(f"h{i}", capacity=2) for i in range(3)], seed=seed)


class TestScheduler:
    def test_least_loaded_placement(self):
        sched = make_scheduler()
        sched.pin("vm0", "h0")
        sched.pin("vm1", "h1")
        # h2 is the unique least-loaded host.
        assert sched.place("vm2").host == "h2"

    def test_tie_break_is_random_but_seeded(self):
        choices_a = [Scheduler([Host("x", 2), Host("y", 2)], seed=s).place("v").host
                     for s in range(20)]
        assert set(choices_a) == {"x", "y"}  # both get chosen across seeds
        again = [Scheduler([Host("x", 2), Host("y", 2)], seed=s).place("v").host
                 for s in range(20)]
        assert choices_a == again  # deterministic per seed

    def test_capacity_respected(self):
        sched = Scheduler([Host("only", capacity=1)], seed=0)
        sched.place("vm0")
        with pytest.raises(PlacementError, match="no capacity"):
            sched.place("vm1")

    def test_colocation_hazard_reproduced(self):
        """The §6.2.2 situation: an empty server attracts both replicas."""
        sched = Scheduler([Host(f"s{i}", capacity=4) for i in range(4)], seed=0)
        for vm, host in (
            ("a", "s0"), ("b", "s0"), ("c", "s2"),
            ("d", "s2"), ("e", "s3"), ("f", "s3"),
        ):
            sched.pin(vm, host)
        first = sched.place("riak1").host
        second = sched.place("riak2").host
        assert first == second == "s1"
        assert "s1" in sched.colocated()

    def test_pin_validations(self):
        sched = make_scheduler()
        sched.pin("vm0", "h0")
        with pytest.raises(PlacementError, match="already placed"):
            sched.pin("vm0", "h1")
        with pytest.raises(PlacementError, match="unknown host"):
            sched.pin("vm1", "ghost")

    def test_pin_respects_capacity(self):
        sched = Scheduler([Host("h", 1)], seed=0)
        sched.pin("a", "h")
        with pytest.raises(PlacementError, match="full"):
            sched.pin("b", "h")

    def test_migrate(self):
        sched = make_scheduler()
        sched.pin("vm0", "h0")
        placement = sched.migrate("vm0", "h1")
        assert placement.host == "h1"
        assert sched.load()["h0"] == 0
        assert sched.vms_on("h1") == ["vm0"]

    def test_migrate_unplaced_vm(self):
        with pytest.raises(PlacementError, match="not placed"):
            make_scheduler().migrate("ghost", "h0")

    def test_load_and_vms_on(self):
        sched = make_scheduler()
        sched.pin("a", "h0")
        sched.pin("b", "h0")
        assert sched.load() == {"h0": 2, "h1": 0, "h2": 0}
        assert sched.vms_on("h0") == ["a", "b"]
        with pytest.raises(PlacementError):
            sched.vms_on("ghost")

    def test_host_validation(self):
        with pytest.raises(PlacementError):
            Host("h", capacity=0)
        with pytest.raises(PlacementError):
            Scheduler([], seed=0)
        with pytest.raises(PlacementError, match="duplicate"):
            Scheduler([Host("h", 1), Host("h", 1)], seed=0)
