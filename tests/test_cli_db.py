"""The ``indaas db`` store-maintenance verbs and sqlite-aware auditing."""

import json

import pytest

from repro.cli import main
from repro.depdb import DepDB

DUMP = (
    '<src="S1" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S2" dst="Internet" route="ToR1,Core1"/>\n'
    '<hw="S1" type="CPU" dep="X5550"/>\n'
)


@pytest.fixture
def dump(tmp_path):
    path = tmp_path / "dump.txt"
    path.write_text(DUMP)
    return path


@pytest.fixture
def store(tmp_path, dump):
    path = tmp_path / "dep.sqlite"
    assert main(["db", "ingest", str(path), str(dump)]) == 0
    return path


class TestIngest:
    def test_ingest_reports_counts(self, tmp_path, dump, capsys):
        path = tmp_path / "fresh.sqlite"
        assert main(["db", "ingest", str(path), str(dump)]) == 0
        out = capsys.readouterr().out
        assert "3 records, 3 new" in out
        assert "network=2 hardware=1 software=0 (total 3)" in out
        with DepDB.sqlite(path) as db:
            assert len(db) == 3

    def test_reingest_is_idempotent(self, store, dump, capsys):
        capsys.readouterr()
        assert main(["db", "ingest", str(store), str(dump)]) == 0
        assert "3 records, 0 new" in capsys.readouterr().out

    def test_ingest_json_dump(self, tmp_path, capsys):
        path = tmp_path / "dump.json"
        path.write_text(DepDB.loads(DUMP).to_json())
        db = tmp_path / "dep.sqlite"
        assert main(["db", "ingest", str(db), str(path)]) == 0
        assert "3 new" in capsys.readouterr().out

    def test_ingest_many_sources(self, tmp_path, dump, capsys):
        other = tmp_path / "more.txt"
        other.write_text('<pgm="Riak" hw="S1" dep="libc6"/>\n')
        db = tmp_path / "dep.sqlite"
        assert main(["db", "ingest", str(db), str(dump), str(other)]) == 0
        assert "(total 4)" in capsys.readouterr().out


class TestStats:
    def test_stats_json(self, store, capsys):
        capsys.readouterr()
        assert main(["db", "stats", str(store), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["counts"] == {
            "network": 2, "hardware": 1, "software": 0,
        }
        with DepDB.sqlite(store) as db:
            assert stats["content_hash"] == db.content_hash()

    def test_stats_rejects_non_sqlite_file(self, dump, capsys):
        assert main(["db", "stats", str(dump)]) == 1
        assert "indaas db ingest" in capsys.readouterr().err


class TestSnapshotAndDiff:
    def test_snapshot_then_clean_diff(self, store, capsys):
        capsys.readouterr()
        assert main(["db", "snapshot", str(store), "--label", "v1"]) == 0
        assert "snapshot seq=1" in capsys.readouterr().out
        assert main(["db", "diff", str(store)]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_drift_exits_2(self, store, tmp_path, capsys):
        assert main(["db", "snapshot", str(store)]) == 0
        extra = tmp_path / "extra.txt"
        extra.write_text('<hw="S9" type="Disk" dep="WD"/>\n')
        assert main(["db", "ingest", str(store), str(extra)]) == 0
        capsys.readouterr()
        assert main(["db", "diff", str(store)]) == 2
        assert "differs from snapshot #1" in capsys.readouterr().out

    def test_diff_against_dump_file(self, store, dump, tmp_path, capsys):
        assert main(["db", "diff", str(store), "--against", str(dump)]) == 0
        extra = tmp_path / "extra.txt"
        extra.write_text('<hw="S9" type="Disk" dep="WD"/>\n')
        assert main(["db", "ingest", str(store), str(extra)]) == 0
        capsys.readouterr()
        assert (
            main(
                ["db", "diff", str(store), "--against", str(dump), "--json"]
            )
            == 2
        )
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["changed"] is True
        assert outcome["only_in_store"] == 1
        assert outcome["only_in_reference"] == 0

    def test_diff_without_snapshot_is_an_error(self, store, capsys):
        assert main(["db", "diff", str(store)]) == 1
        assert "no snapshots" in capsys.readouterr().err


class TestSqliteAudit:
    def test_audit_bytes_identical_for_text_and_sqlite(
        self, store, dump, capsys
    ):
        args = [
            "--servers", "S1,S2", "--algorithm", "sampling",
            "--rounds", "2000", "--seed", "7", "--json",
        ]
        assert main(["audit", str(dump)] + args) == 0
        from_text = capsys.readouterr().out
        assert main(["audit", str(store)] + args) == 0
        from_store = capsys.readouterr().out
        assert from_store == from_text

    def test_audit_bytes_identical_across_worker_counts(self, store, capsys):
        args = [
            "audit", str(store), "--servers", "S1,S2",
            "--algorithm", "sampling", "--rounds", "2000",
            "--seed", "7", "--json",
        ]
        assert main(args + ["--workers", "0"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial
