"""Failure-injection tests: the system degrades loudly, not silently.

Corrupt inputs, dishonest participants and degenerate configurations
must either produce correct results or raise a typed error — never a
quietly wrong audit (a wrong independence verdict is the worst failure
mode an auditing system can have).
"""

import pytest

from repro import (
    AuditSpec,
    ComponentSets,
    FailureSampler,
    FaultGraph,
    GateType,
    SIAAuditor,
    minimal_risk_groups,
)
from repro.crypto import SharedGroup
from repro.depdb import DepDB, NetworkDependency
from repro.errors import (
    DependencyDataError,
    FaultGraphError,
    IndaasError,
    ProtocolError,
)
from repro.privacy import PSOPParty, PSOPProtocol, jaccard


class TestCorruptDependencyData:
    def test_truncated_dump_rejected_with_line_number(self):
        good = '<src="S1" dst="D" route="x"/>'
        corrupt = good + '\n<src="S2" dst="D" rout'  # truncated mid-line
        with pytest.raises(DependencyDataError, match="line 2"):
            DepDB.loads(corrupt)

    def test_binary_garbage_rejected(self):
        with pytest.raises(DependencyDataError):
            DepDB.loads("\x00\x01\x02<>")

    def test_partial_json_rejected(self):
        with pytest.raises(DependencyDataError):
            DepDB.from_json('{"network": [{"src": "S1"')

    def test_missing_json_fields_rejected(self):
        with pytest.raises((DependencyDataError, KeyError)):
            DepDB.from_json('{"network": [{"src": "S1"}]}')

    def test_all_errors_are_indaas_errors(self):
        """One except-clause catches every library failure."""
        with pytest.raises(IndaasError):
            DepDB.loads("<broken")


class TestDegenerateGraphs:
    def test_everything_failed(self, deep_graph):
        assert deep_graph.evaluate(deep_graph.basic_events())

    def test_nothing_failed(self, deep_graph):
        assert not deep_graph.evaluate([])

    def test_single_node_graph_sampling(self):
        g = FaultGraph()
        g.add_basic_event("only")
        g.set_top("only")
        result = FailureSampler(g, seed=0).run(200)
        assert result.risk_groups == [frozenset({"only"})]

    def test_impossible_top_yields_no_risk_groups(self):
        """A k-of-n threshold that cannot be met by the leaves present."""
        g = FaultGraph()
        g.add_basic_event("a")
        g.add_gate("never", GateType.AND, ["a"])
        g.add_gate("top", GateType.AND, ["never"], top=True)
        # 'a' alone satisfies it; build a genuinely trivial case instead:
        groups = minimal_risk_groups(g)
        assert groups == [frozenset({"a"})]

    def test_deeply_nested_chain(self):
        g = FaultGraph()
        previous = g.add_basic_event("leaf")
        for i in range(200):
            previous = g.add_gate(f"g{i}", GateType.OR, [previous])
        g.set_top(previous)
        assert minimal_risk_groups(g) == [frozenset({"leaf"})]
        assert g.evaluate(["leaf"])


class TestDishonestParticipants:
    def test_under_declaring_psop_party_skews_but_is_auditable(self):
        """A provider hiding components looks more independent — the
        attack §5.2 describes; the protocol result reflects its input,
        and the audit trail (tested elsewhere) is the countermeasure."""
        group = SharedGroup.with_bits(768)
        honest = ["shared-1", "shared-2", "own-1"]
        cheater_real = ["shared-1", "shared-2", "own-2"]
        cheater_declared = ["own-2"]  # hides the shared components
        honest_run = PSOPProtocol(
            [
                PSOPParty("A", honest, group, seed=0),
                PSOPParty("B", cheater_real, group, seed=1),
            ]
        ).run()
        cheating_run = PSOPProtocol(
            [
                PSOPParty("A", honest, group, seed=0),
                PSOPParty("B", cheater_declared, group, seed=1),
            ]
        ).run()
        assert honest_run.jaccard == pytest.approx(
            jaccard([set(honest), set(cheater_real)])
        )
        assert cheating_run.jaccard < honest_run.jaccard

    def test_psop_rejects_malformed_group_elements(self):
        group = SharedGroup.with_bits(768)
        party = PSOPParty("A", ["x"], group, seed=0)
        with pytest.raises(IndaasError):
            party.key.encrypt(group.prime + 1)  # outside the group

    def test_duplicate_party_identities_rejected(self):
        group = SharedGroup.with_bits(768)
        with pytest.raises(ProtocolError):
            PSOPProtocol(
                [
                    PSOPParty("A", ["x"], group, seed=0),
                    PSOPParty("A", ["y"], group, seed=1),
                ]
            )


class TestAuditPipelineFaults:
    def test_auditing_unknown_server_still_reports_host_risk(self):
        """A server with no records degrades to a host-only audit
        rather than silently vanishing from the deployment."""
        db = DepDB()
        db.add(NetworkDependency("S1", "Internet", ("tor1",)))
        audit = SIAAuditor(db).audit_deployment(
            AuditSpec(deployment="d", servers=("S1", "ghost"))
        )
        events = {e for entry in audit.ranking for e in entry.events}
        assert "host:ghost" in events

    def test_conflicting_weights_raise(self):
        sets = ComponentSets.from_mapping({"E1": ["x"], "E2": ["x"]})
        graph = sets.to_fault_graph()
        graph.set_probability("x", 0.5)
        # Re-assigning a different value is allowed (explicit update)...
        graph.set_probability("x", 0.7)
        assert graph.probability_of("x") == 0.7
        # ...but invalid values never land.
        with pytest.raises(FaultGraphError):
            graph.set_probability("x", 7.0)
        assert graph.probability_of("x") == 0.7
