"""Test package (unique basenames across subpackages via package imports)."""
