"""Unit tests for failure-probability models."""

import pytest

from repro.errors import AnalysisError
from repro.failures import (
    combine_weighers,
    cvss_software_weigher,
    cvss_to_probability,
    gill_network_weigher,
    mapping_weigher,
    uniform_weigher,
)


class TestGillWeigher:
    def test_device_prefix_matching(self):
        weigh = gill_network_weigher()
        assert weigh("device", "core-3-1") == pytest.approx(0.025)
        assert weigh("device", "pod1-agg0") is None or True  # see below
        # ToR naming in the Fig-6a topology
        assert weigh("device", "e17") == pytest.approx(0.052)
        assert weigh("device", "b1") == pytest.approx(0.103)

    def test_longest_prefix_wins(self):
        weigh = gill_network_weigher()
        # "core-1" must hit "core" (0.025), not "c" (0.025 same here) —
        # check with an override that separates them.
        weigh = gill_network_weigher(overrides={"c": 0.5})
        assert weigh("device", "core-1-1") == pytest.approx(0.025)
        assert weigh("device", "c1") == pytest.approx(0.5)

    def test_non_device_kinds_deferred(self):
        weigh = gill_network_weigher()
        assert weigh("pkg", "libc6") is None
        assert weigh("host", "S1") is None

    def test_override_validation(self):
        with pytest.raises(Exception):
            gill_network_weigher(overrides={"tor": 2.0})


class TestCVSS:
    def test_score_mapping(self):
        assert cvss_to_probability(10.0) == pytest.approx(0.4)
        assert cvss_to_probability(0.0) == 0.0

    def test_score_bounds(self):
        with pytest.raises(AnalysisError):
            cvss_to_probability(11.0)

    def test_weigher_uses_scores(self):
        weigh = cvss_software_weigher({"openssl@1.0.1": 9.8})
        assert weigh("pkg", "openssl@1.0.1") == pytest.approx(9.8 * 0.04)

    def test_weigher_default_score(self):
        weigh = cvss_software_weigher({}, default_score=5.0)
        assert weigh("pkg", "anything") == pytest.approx(0.2)

    def test_weigher_none_default_leaves_unweighted(self):
        weigh = cvss_software_weigher({}, default_score=None)
        assert weigh("pkg", "anything") is None

    def test_weigher_ignores_other_kinds(self):
        weigh = cvss_software_weigher({"x": 5.0})
        assert weigh("device", "x") is None

    def test_invalid_score_rejected(self):
        with pytest.raises(AnalysisError):
            cvss_software_weigher({"x": 99.0})


class TestUniformAndMapping:
    def test_uniform_all_kinds(self):
        weigh = uniform_weigher(0.1)
        assert weigh("device", "x") == 0.1
        assert weigh("pkg", "y") == 0.1

    def test_uniform_kind_filter(self):
        weigh = uniform_weigher(0.1, kinds=["device"])
        assert weigh("device", "x") == 0.1
        assert weigh("pkg", "y") is None

    def test_mapping_weigher(self):
        weigh = mapping_weigher({("hw", "SED900"): 0.05})
        assert weigh("hw", "SED900") == 0.05
        assert weigh("hw", "other") is None


class TestCombine:
    def test_first_match_wins(self):
        weigh = combine_weighers(
            mapping_weigher({("device", "x"): 0.9}),
            uniform_weigher(0.1),
        )
        assert weigh("device", "x") == 0.9
        assert weigh("device", "y") == 0.1

    def test_default_fills_gaps(self):
        weigh = combine_weighers(
            uniform_weigher(0.2, kinds=["device"]), default=0.01
        )
        assert weigh("pkg", "libc6") == 0.01

    def test_no_default_leaves_none(self):
        weigh = combine_weighers(uniform_weigher(0.2, kinds=["device"]))
        assert weigh("pkg", "libc6") is None
