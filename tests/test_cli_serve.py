"""The ``indaas serve`` verb and ``audit --remote``: live subprocess tests."""

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO = Path(__file__).resolve().parents[1]
DEPDB = (
    '<src="S1" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S2" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S3" dst="Internet" route="ToR2,Core2"/>\n'
)


def spawn(argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def wait_for_port(port, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=1)
            conn.request("GET", "/v1/healthz")
            if conn.getresponse().status == 200:
                conn.close()
                return
        except OSError:
            time.sleep(0.05)
    raise TimeoutError(f"service on port {port} never became healthy")


@pytest.fixture
def depdb_file(tmp_path):
    path = tmp_path / "net.depdb"
    path.write_text(DEPDB)
    return path


@pytest.fixture
def served_port(tmp_path):
    """A live ``indaas serve`` subprocess on an ephemeral-ish port."""
    port = 18131 + (os.getpid() % 200)
    process = spawn(["serve", "--port", str(port), "--workers", "2"])
    try:
        wait_for_port(port)
        yield port
    finally:
        if process.poll() is None:
            process.terminate()
            process.wait(timeout=20)


class TestServeProcess:
    def test_sigterm_drains_and_exits_zero(self):
        port = 20131 + (os.getpid() % 200)
        process = spawn(["serve", "--port", str(port)])
        try:
            wait_for_port(port)
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=20)
            assert process.returncode == 0
            stderr = process.stderr.read()
            assert "listening on" in stderr
            assert "draining" in stderr
        finally:
            if process.poll() is None:
                process.kill()

    def test_sigint_also_exits_zero(self):
        port = 19131 + (os.getpid() % 200)
        process = spawn(["serve", "--port", str(port)])
        try:
            wait_for_port(port)
            process.send_signal(signal.SIGINT)
            process.wait(timeout=20)
            assert process.returncode == 0
        finally:
            if process.poll() is None:
                process.kill()

    def test_healthz_over_the_wire(self, served_port):
        conn = http.client.HTTPConnection("127.0.0.1", served_port, timeout=5)
        conn.request("GET", "/v1/healthz")
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert payload["kind"] == "health"
        assert payload["workers"] == 2


class TestAuditRemote:
    def test_remote_json_is_bit_identical_to_local(
        self, served_port, depdb_file, capsys
    ):
        argv = [
            "audit",
            str(depdb_file),
            "--servers",
            "S1,S3",
            "--seed",
            "7",
            "--json",
        ]
        assert main(argv) == 0
        local = capsys.readouterr().out
        assert (
            main(argv + ["--remote", f"http://127.0.0.1:{served_port}"]) == 0
        )
        remote = capsys.readouterr().out
        assert remote == local
        payload = json.loads(remote)
        assert payload["kind"] == "audit_report"

    def test_remote_unreachable_is_a_clean_error(self, depdb_file, capsys):
        code = main(
            [
                "audit",
                str(depdb_file),
                "--servers",
                "S1,S3",
                "--remote",
                "http://127.0.0.1:1",
            ]
        )
        assert code != 0
        assert "unreachable" in capsys.readouterr().err


class TestWatchSignals:
    def test_watch_sigterm_exits_zero(self, tmp_path):
        (tmp_path / "net.depdb").write_text(DEPDB)
        (tmp_path / "web.json").write_text(
            json.dumps(
                {
                    "name": "web-tier",
                    "depdb": "net.depdb",
                    "servers": ["S1", "S2"],
                    "seed": 0,
                }
            )
        )
        process = spawn(["watch", str(tmp_path), "--interval", "0.2"])
        try:
            deadline = time.monotonic() + 20
            first_line = None
            while time.monotonic() < deadline and not first_line:
                first_line = process.stdout.readline()
            assert first_line, "watch never produced an iteration"
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=20)
            assert process.returncode == 0
            entry = json.loads(first_line)
            assert entry["kind"] == "event"
            assert entry["event"] == "iteration"
        finally:
            if process.poll() is None:
                process.kill()


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8130
        assert args.workers == 2
        assert args.per_tenant == 8
        assert args.queue_limit == 64
        assert args.block_size == 4096

    def test_audit_gains_remote_flags(self):
        args = build_parser().parse_args(
            ["audit", "d.depdb", "--servers", "S1", "--remote",
             "http://h:1", "--tenant", "acme", "--json"]
        )
        assert args.remote == "http://h:1"
        assert args.tenant == "acme"
        assert args.json is True
        assert args.timeout == 300.0
