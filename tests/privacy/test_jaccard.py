"""Unit tests for Jaccard similarity."""

import pytest

from repro.errors import AnalysisError
from repro.privacy import (
    SIGNIFICANT_CORRELATION,
    is_significantly_correlated,
    jaccard,
    jaccard_multiset,
)


class TestJaccard:
    def test_two_sets(self):
        assert jaccard([{"a", "b"}, {"b", "c"}]) == pytest.approx(1 / 3)

    def test_identical_sets(self):
        assert jaccard([{"a"}, {"a"}]) == 1.0

    def test_disjoint_sets(self):
        assert jaccard([{"a"}, {"b"}]) == 0.0

    def test_multi_way(self):
        sets = [{"x", "a"}, {"x", "b"}, {"x", "c"}]
        assert jaccard(sets) == pytest.approx(1 / 4)

    def test_needs_two_sets(self):
        with pytest.raises(AnalysisError):
            jaccard([{"a"}])

    def test_empty_set_rejected(self):
        with pytest.raises(AnalysisError):
            jaccard([{"a"}, set()])


class TestJaccardMultiset:
    def test_min_over_max(self):
        a = {"x": 2, "y": 1}
        b = {"x": 1, "z": 1}
        # min-counts: x:1 => 1; max-counts: x:2 + y:1 + z:1 = 4
        assert jaccard_multiset([a, b]) == pytest.approx(1 / 4)

    def test_agrees_with_set_jaccard_when_counts_one(self):
        a = {"a": 1, "b": 1}
        b = {"b": 1, "c": 1}
        assert jaccard_multiset([a, b]) == jaccard([set(a), set(b)])

    def test_invalid_count(self):
        with pytest.raises(AnalysisError):
            jaccard_multiset([{"a": 0}, {"a": 1}])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            jaccard_multiset([{}, {"a": 1}])


class TestThreshold:
    def test_paper_value(self):
        assert SIGNIFICANT_CORRELATION == 0.75

    def test_flagging(self):
        assert is_significantly_correlated(0.8)
        assert is_significantly_correlated(0.75)
        assert not is_significantly_correlated(0.5)

    def test_invalid_similarity(self):
        with pytest.raises(AnalysisError):
            is_significantly_correlated(1.5)
