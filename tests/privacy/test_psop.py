"""Unit tests for the P-SOP private set-intersection cardinality protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import SharedGroup
from repro.errors import ProtocolError
from repro.privacy import PSOPParty, PSOPProtocol, jaccard, jaccard_multiset


@pytest.fixture(scope="module")
def group() -> SharedGroup:
    return SharedGroup.with_bits(768)


def run_psop(group, datasets: dict, seeds=None):
    parties = [
        PSOPParty(name, elements, group, seed=i if seeds is None else seeds[i])
        for i, (name, elements) in enumerate(datasets.items())
    ]
    return PSOPProtocol(parties).run()


class TestCorrectness:
    def test_two_party_counts(self, group):
        result = run_psop(
            group, {"A": ["x", "y", "z"], "B": ["y", "z", "w"]}
        )
        assert result.intersection == 2
        assert result.union == 4
        assert result.jaccard == pytest.approx(0.5)

    def test_matches_plaintext_jaccard(self, group):
        sets = {"A": {"a", "b", "c"}, "B": {"b", "c", "d"}, "C": {"c", "d"}}
        result = run_psop(group, sets)
        assert result.jaccard == pytest.approx(jaccard(list(sets.values())))

    def test_disjoint_sets(self, group):
        result = run_psop(group, {"A": ["a1", "a2"], "B": ["b1"]})
        assert result.intersection == 0
        assert result.jaccard == 0.0

    def test_identical_sets(self, group):
        result = run_psop(group, {"A": ["x", "y"], "B": ["x", "y"]})
        assert result.jaccard == 1.0

    def test_multiset_expansion(self, group):
        a = {"e": 2, "f": 1}
        b = {"e": 1, "g": 1}
        result = run_psop(group, {"A": a, "B": b})
        assert result.jaccard == pytest.approx(jaccard_multiset([a, b]))

    def test_duplicate_list_elements_counted_as_multiset(self, group):
        result = run_psop(group, {"A": ["e", "e"], "B": ["e"]})
        # A = {e:2}, B = {e:1}: intersection 1, union 2.
        assert result.intersection == 1
        assert result.union == 2


class TestPrivacyMechanics:
    def test_wire_values_differ_from_plain_hashes(self, group):
        """Nothing resembling the raw element hash crosses the wire."""
        from repro.crypto import hash_to_group

        party = PSOPParty("A", ["secret"], group, seed=0)
        initial = party.initial_dataset()
        assert hash_to_group("secret||1", group) not in initial

    def test_order_of_encryption_irrelevant(self, group):
        """Final ciphertexts for common elements match across datasets."""
        result = run_psop(group, {"A": ["shared"], "B": ["shared"]})
        assert result.intersection == 1


class TestAccounting:
    def test_bytes_scale_with_elements_and_parties(self, group):
        small = run_psop(group, {"A": ["x"], "B": ["y"]})
        large = run_psop(
            group,
            {"A": [f"x{i}" for i in range(10)], "B": [f"y{i}" for i in range(10)]},
        )
        assert large.total_bytes > small.total_bytes
        three = run_psop(group, {"A": ["x"], "B": ["y"], "C": ["z"]})
        assert three.total_bytes > small.total_bytes

    def test_expected_wire_volume_two_parties(self, group):
        """k=2, n=1 each: ring hop moves 2 datasets once, share moves 2
        datasets to 1 receiver each: 4 element transfers."""
        result = run_psop(group, {"A": ["x"], "B": ["y"]})
        assert result.total_bytes == 4 * group.element_bytes

    def test_per_party_sent_covers_all(self, group):
        result = run_psop(group, {"A": ["x"], "B": ["y"], "C": ["z"]})
        assert set(result.bytes_sent) == {"A", "B", "C"}

    def test_elapsed_recorded(self, group):
        assert run_psop(group, {"A": ["x"], "B": ["y"]}).elapsed_seconds > 0


class TestValidation:
    def test_needs_two_parties(self, group):
        with pytest.raises(ProtocolError):
            PSOPProtocol([PSOPParty("A", ["x"], group, seed=0)])

    def test_duplicate_names_rejected(self, group):
        parties = [
            PSOPParty("A", ["x"], group, seed=0),
            PSOPParty("A", ["y"], group, seed=1),
        ]
        with pytest.raises(ProtocolError):
            PSOPProtocol(parties)

    def test_empty_dataset_rejected(self, group):
        with pytest.raises(ProtocolError):
            PSOPParty("A", [], group)

    def test_mixed_groups_rejected(self, group):
        # A different modulus size: with_bits() caches per size, and
        # groups over the same prime now compare equal by design.
        other = SharedGroup.with_bits(1024)
        parties = [
            PSOPParty("A", ["x"], group, seed=0),
            PSOPParty("B", ["y"], other, seed=1),
        ]
        with pytest.raises(ProtocolError, match="share one group"):
            PSOPProtocol(parties)

    def test_invalid_multiset_count(self, group):
        with pytest.raises(ProtocolError):
            PSOPParty("A", {"e": 0}, group)


@settings(max_examples=10, deadline=None)
@given(
    left=st.sets(st.integers(0, 30), min_size=1, max_size=10),
    right=st.sets(st.integers(0, 30), min_size=1, max_size=10),
)
def test_psop_equals_plaintext_jaccard_property(left, right):
    group = SharedGroup.with_bits(768)
    sets = {"L": [f"e{i}" for i in left], "R": [f"e{i}" for i in right]}
    result = run_psop(group, sets)
    truth = jaccard([set(sets["L"]), set(sets["R"])])
    assert result.jaccard == pytest.approx(truth)
