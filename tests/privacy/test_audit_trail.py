"""Unit tests for signed PIA audit trails (§5.2)."""

import pytest

from repro.errors import ProtocolError
from repro.privacy import (
    AuditTrail,
    commit_component_set,
    meta_audit,
)

KEYS = {"Cloud1": b"secret-1", "Cloud2": b"secret-2"}
SET_V1 = ["router:10.0.0.1", "package:libc6@2.19", "package:libssl@1.0.1"]


class TestCommitment:
    def test_order_independent(self):
        a = commit_component_set(["x", "y"], salt="s")
        b = commit_component_set(["y", "x"], salt="s")
        assert a == b

    def test_salt_changes_commitment(self):
        assert commit_component_set(["x"], "s1") != commit_component_set(
            ["x"], "s2"
        )

    def test_empty_inputs_rejected(self):
        with pytest.raises(ProtocolError):
            commit_component_set([], "s")
        with pytest.raises(ProtocolError):
            commit_component_set(["x"], "")


class TestTrail:
    def test_record_and_verify(self):
        trail = AuditTrail(KEYS)
        trail.record("Cloud1", "run-1", SET_V1, salt="s1", timestamp=1.0)
        trail.record("Cloud1", "run-2", SET_V1, salt="s2", timestamp=2.0)
        assert trail.verify_chain("Cloud1")
        assert len(trail.entries("Cloud1")) == 2
        assert trail.entries("Cloud2") == []

    def test_chain_links_previous_entries(self):
        trail = AuditTrail(KEYS)
        first = trail.record("Cloud1", "run-1", SET_V1, "s", timestamp=1.0)
        second = trail.record("Cloud1", "run-2", SET_V1, "s", timestamp=2.0)
        assert first.previous == "0" * 64
        assert second.previous != first.previous

    def test_tampered_entry_breaks_verification(self):
        trail = AuditTrail(KEYS)
        trail.record("Cloud1", "run-1", SET_V1, "s", timestamp=1.0)
        entry = trail._entries[0]
        object.__setattr__(entry, "set_size", 99)  # tamper
        assert not trail.verify_chain("Cloud1")

    def test_unknown_provider_rejected(self):
        trail = AuditTrail(KEYS)
        with pytest.raises(ProtocolError):
            trail.record("Mallory", "run-1", SET_V1, "s")

    def test_needs_keys(self):
        with pytest.raises(ProtocolError):
            AuditTrail({})


class TestMetaAudit:
    def make_trail(self) -> AuditTrail:
        trail = AuditTrail(KEYS)
        trail.record("Cloud1", "run-1", SET_V1, salt="s1", timestamp=1.0)
        return trail

    def test_honest_provider_passes(self):
        finding = meta_audit(
            self.make_trail(), "Cloud1", "run-1", SET_V1, salt="s1"
        )
        assert finding.honest
        assert not finding.reasons

    def test_wrong_disclosure_caught(self):
        finding = meta_audit(
            self.make_trail(),
            "Cloud1",
            "run-1",
            SET_V1[:-1],  # hides one component now
            salt="s1",
        )
        assert not finding.honest
        assert any("commitment" in r for r in finding.reasons)

    def test_under_declaration_caught_with_ground_truth(self):
        """The §5.2 cheat: commit to a subset of the real components."""
        trail = AuditTrail(KEYS)
        declared = SET_V1[:-1]
        trail.record("Cloud1", "run-1", declared, salt="s1", timestamp=1.0)
        finding = meta_audit(
            trail,
            "Cloud1",
            "run-1",
            declared,
            salt="s1",
            ground_truth=SET_V1,  # an on-site sweep found the real set
        )
        assert not finding.honest
        assert any("under-declared" in r for r in finding.reasons)

    def test_missing_run_caught(self):
        finding = meta_audit(
            self.make_trail(), "Cloud1", "run-404", SET_V1, salt="s1"
        )
        assert not finding.honest
