"""Unit tests for the Kissner-Song baseline protocol."""

import pytest

from repro.crypto import generate_keypair
from repro.errors import ProtocolError
from repro.privacy import KSParty, KSProtocol


@pytest.fixture(scope="module")
def keypair():
    """One small keypair shared by tests (keygen dominates runtime)."""
    return generate_keypair(bits=256, seed=0)


def run_ks(datasets: dict, keypair) -> "KSResult":
    parties = [
        KSParty(name, elements, seed=i)
        for i, (name, elements) in enumerate(datasets.items())
    ]
    return KSProtocol(parties, keypair=keypair).run()


class TestCorrectness:
    def test_two_party_intersection(self, keypair):
        result = run_ks(
            {"A": ["x", "y", "z"], "B": ["y", "z", "w"]}, keypair
        )
        assert result.intersection == 2

    def test_three_party_intersection(self, keypair):
        result = run_ks(
            {
                "A": ["common", "a1", "a2"],
                "B": ["common", "b1"],
                "C": ["common", "c1", "a1"],
            },
            keypair,
        )
        assert result.intersection == 1

    def test_disjoint(self, keypair):
        assert run_ks({"A": ["a"], "B": ["b"]}, keypair).intersection == 0

    def test_identical(self, keypair):
        result = run_ks({"A": ["x", "y"], "B": ["y", "x"]}, keypair)
        assert result.intersection == 2

    def test_duplicates_deduplicated(self, keypair):
        result = run_ks({"A": ["x", "x", "y"], "B": ["x"]}, keypair)
        assert result.intersection == 1


class TestAccounting:
    def test_bandwidth_grows_superlinearly_with_parties(self, keypair):
        """Threshold decryption makes KS traffic grow O(k^3): the Fig-8a
        "much faster than P-SOP" behaviour."""
        two = run_ks({"A": ["x"], "B": ["y"]}, keypair)
        four = run_ks(
            {"A": ["x"], "B": ["y"], "C": ["z"], "D": ["w"]}, keypair
        )
        assert four.total_bytes > 6 * two.total_bytes

    def test_ciphertexts_are_double_width(self, keypair):
        public, _ = keypair
        result = run_ks({"A": ["x"], "B": ["y"]}, keypair)
        assert result.ciphertext_bytes == public.ciphertext_bytes
        # Paillier ciphertexts live mod n^2: twice the modulus width.
        assert result.ciphertext_bytes >= 2 * ((public.n.bit_length()) // 8)

    def test_metadata_records_degree(self, keypair):
        result = run_ks({"A": ["x", "y"], "B": ["z"]}, keypair)
        # Masked polynomials have degree 2*|S|; aggregated = max.
        assert result.metadata["aggregated_degree"] == 4


class TestValidation:
    def test_needs_two_parties(self, keypair):
        with pytest.raises(ProtocolError):
            KSProtocol([KSParty("A", ["x"])], keypair=keypair)

    def test_duplicate_names(self, keypair):
        with pytest.raises(ProtocolError):
            KSProtocol(
                [KSParty("A", ["x"]), KSParty("A", ["y"])], keypair=keypair
            )

    def test_empty_dataset(self):
        with pytest.raises(ProtocolError):
            KSParty("A", [])
