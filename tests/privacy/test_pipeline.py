"""End-to-end parity tests for the batched PIA fast path.

The contract (DESIGN.md "PIA fast path"): for the same seeds the
batched drivers produce results bit-identical to the serial reference
protocols — same counts, same transfer log, same per-party RNG end
states — for any worker count.
"""

import pytest

from repro.crypto import SharedGroup, generate_keypair
from repro.errors import ProtocolError
from repro.privacy import (
    KSParty,
    KSProtocol,
    PIAAuditor,
    PIAPipeline,
    PSOPParty,
    PSOPProtocol,
)
from repro.privacy.network_sim import ProtocolNetwork


@pytest.fixture(scope="module")
def group() -> SharedGroup:
    return SharedGroup.with_bits(768)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=256, seed=0)


DATASETS = {
    "A": ["x", "y", "z", "shared"],
    "B": ["y", "w", "shared"],
    "C": {"shared": 2, "z": 1},
}


def make_psop(group, fast, n_workers=0, seeds=(0, 1, 2)):
    parties = [
        PSOPParty(name, elements, group, seed=seed)
        for (name, elements), seed in zip(DATASETS.items(), seeds)
    ]
    protocol = PSOPProtocol(
        parties, network=ProtocolNetwork(), fast=fast, n_workers=n_workers
    )
    return protocol, parties


def assert_psop_equal(left, right):
    for field in (
        "parties",
        "intersection",
        "union",
        "jaccard",
        "bytes_sent",
        "total_bytes",
        "element_bytes",
        "metadata",
    ):
        assert getattr(left, field) == getattr(right, field), field


class TestPSOPFastPath:
    def test_bit_identical_to_serial(self, group):
        serial_protocol, serial_parties = make_psop(group, fast=False)
        fast_protocol, fast_parties = make_psop(group, fast=True)
        serial = serial_protocol.run_serial()
        fast = fast_protocol.run()
        assert_psop_equal(serial, fast)
        # Same transfer log, message by message.
        assert serial_protocol.network.transfers == fast_protocol.network.transfers
        # Same permuter end state: later draws must agree.
        for a, b in zip(serial_parties, fast_parties):
            assert a.permuter.permutation(16) == b.permuter.permutation(16)

    def test_worker_count_does_not_affect_results(self, group):
        inline = make_psop(group, fast=True, n_workers=0)[0].run()
        fanned = make_psop(group, fast=True, n_workers=2)[0].run()
        assert_psop_equal(inline, fanned)

    def test_unseeded_parties_are_reseeded_reproducibly(self, group):
        """Satellite: no silent nondeterminism — a protocol seed pins
        parties constructed without one."""
        results = []
        for _ in range(2):
            parties = [
                PSOPParty(name, elements, group, seed=None)
                for name, elements in DATASETS.items()
            ]
            protocol = PSOPProtocol(
                parties, network=ProtocolNetwork(), seed=7
            )
            results.append((protocol.run(), protocol.network.transfers))
        assert_psop_equal(results[0][0], results[1][0])
        assert results[0][1] == results[1][1]

    def test_two_party_wire_volume_preserved(self, group):
        """The fast path replays the exact serial wire schedule."""
        parties = [
            PSOPParty("A", ["x"], group, seed=0),
            PSOPParty("B", ["y"], group, seed=1),
        ]
        result = PSOPProtocol(parties).run()
        assert result.total_bytes == 4 * group.element_bytes


def make_ks(keypair, fast, n_workers=0, seeds=(3, 4, 5)):
    datasets = {
        "A": ["x", "y", "z", "common"],
        "B": ["common", "y", "q"],
        "C": ["common", "z", "x", "v"],
    }
    parties = [
        KSParty(name, elements, seed=seed)
        for (name, elements), seed in zip(datasets.items(), seeds)
    ]
    protocol = KSProtocol(
        parties,
        keypair=keypair,
        network=ProtocolNetwork(),
        fast=fast,
        n_workers=n_workers,
    )
    return protocol, parties


def assert_ks_equal(left, right):
    for field in (
        "parties",
        "intersection",
        "bytes_sent",
        "total_bytes",
        "ciphertext_bytes",
        "metadata",
    ):
        assert getattr(left, field) == getattr(right, field), field


class TestKSFastPath:
    def test_bit_identical_to_serial(self, keypair):
        serial_protocol, serial_parties = make_ks(keypair, fast=False)
        fast_protocol, fast_parties = make_ks(keypair, fast=True)
        serial = serial_protocol.run_serial()
        fast = fast_protocol.run()
        assert_ks_equal(serial, fast)
        assert serial_protocol.network.transfers == fast_protocol.network.transfers
        # Same RNG and permuter end states.
        for a, b in zip(serial_parties, fast_parties):
            assert a._rng.random() == b._rng.random()
            assert a.permuter.permutation(8) == b.permuter.permutation(8)

    def test_worker_count_does_not_affect_results(self, keypair):
        inline_protocol, _ = make_ks(keypair, fast=True, n_workers=0)
        fanned_protocol, _ = make_ks(keypair, fast=True, n_workers=2)
        inline, fanned = inline_protocol.run(), fanned_protocol.run()
        assert_ks_equal(inline, fanned)
        assert inline_protocol.network.transfers == fanned_protocol.network.transfers

    def test_unseeded_parties_are_reseeded_reproducibly(self, keypair):
        results = []
        for _ in range(2):
            parties = [
                KSParty("A", ["x", "y", "c"], seed=None),
                KSParty("B", ["c", "z"], seed=None),
            ]
            protocol = KSProtocol(
                parties, keypair=keypair, network=ProtocolNetwork(), seed=11
            )
            results.append((protocol.run(), protocol.network.transfers))
        assert_ks_equal(results[0][0], results[1][0])
        assert results[0][1] == results[1][1]


SETS = {
    "CloudA": ["a", "b", "s"],
    "CloudB": ["c", "s"],
    "CloudC": ["d", "e", "s"],
    "CloudD": ["f", "s", "a"],
}


class TestPIAPipeline:
    @pytest.mark.parametrize("protocol", ["plaintext", "psop", "psop-minhash"])
    def test_matches_auditor(self, protocol):
        auditor = PIAAuditor(
            SETS, protocol=protocol, group_bits=768, minhash_size=32
        ).audit(ways=2)
        pipeline = PIAPipeline(
            SETS, protocol=protocol, group_bits=768, minhash_size=32
        ).audit(ways=2)
        assert pipeline.entries == auditor.entries
        assert pipeline.total_bytes == auditor.total_bytes
        assert pipeline.protocol == auditor.protocol

    def test_worker_count_does_not_affect_report(self):
        reports = [
            PIAPipeline(
                SETS, protocol="psop", group_bits=768, n_workers=n
            ).audit(ways=2)
            for n in (0, 2)
        ]
        assert reports[0].entries == reports[1].entries
        assert reports[0].total_bytes == reports[1].total_bytes

    def test_three_way(self):
        report = PIAPipeline(SETS, protocol="plaintext").audit(ways=3)
        assert len(report.entries) == 4  # C(4, 3)
        assert report.entries[0].rank == 1

    def test_subset_of_providers(self):
        report = PIAPipeline(SETS, protocol="plaintext").audit(
            ways=2, providers=["CloudA", "CloudB"]
        )
        assert len(report.entries) == 1

    def test_unknown_provider_rejected(self):
        with pytest.raises(ProtocolError, match="unknown providers"):
            PIAPipeline(SETS).audit(ways=2, providers=["CloudA", "Nope"])

    def test_needs_two_providers(self):
        with pytest.raises(ProtocolError):
            PIAPipeline({"only": ["x"]})

    def test_empty_set_rejected(self):
        with pytest.raises(ProtocolError):
            PIAPipeline({"A": ["x"], "B": []})

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ProtocolError):
            PIAPipeline(SETS, protocol="magic")
