"""Integration tests for the PIA auditor (Table 2 pipeline)."""

import json

import pytest

from repro.errors import ProtocolError
from repro.privacy import PIAAuditor
from repro.swinventory import (
    CLOUDS,
    all_stack_packages,
    expected_jaccard,
)

SMALL_SETS = {
    "P1": ["a", "b", "c", "shared"],
    "P2": ["d", "e", "shared"],
    "P3": ["f", "shared", "b"],
}


class TestPlaintextProtocol:
    def test_measure_single_deployment(self):
        auditor = PIAAuditor(SMALL_SETS, protocol="plaintext")
        value, estimated, n_bytes = auditor.measure(("P1", "P2"))
        assert value == pytest.approx(1 / 6)
        assert not estimated
        assert n_bytes == 0

    def test_audit_ranks_ascending(self):
        auditor = PIAAuditor(SMALL_SETS, protocol="plaintext")
        report = auditor.audit(ways=2)
        values = [e.jaccard for e in report.entries]
        assert values == sorted(values)
        assert report.best().jaccard == min(values)

    def test_ranks_are_one_based_consecutive(self):
        report = PIAAuditor(SMALL_SETS, protocol="plaintext").audit(ways=2)
        assert [e.rank for e in report.entries] == [1, 2, 3]

    def test_three_way(self):
        report = PIAAuditor(SMALL_SETS, protocol="plaintext").audit(ways=3)
        assert len(report.entries) == 1
        # intersection {shared}; union {a,b,c,d,e,f,shared} -> 1/7
        assert report.entries[0].jaccard == pytest.approx(1 / 7)

    def test_report_serialisation(self):
        report = PIAAuditor(SMALL_SETS, protocol="plaintext").audit(ways=2)
        payload = json.loads(report.to_json())
        assert payload["protocol"] == "plaintext"
        assert len(payload["entries"]) == 3
        text = report.render_text()
        assert "Rank" in text and "P1 & P2" in text


class TestPSOPProtocol:
    def test_psop_matches_plaintext(self):
        psop = PIAAuditor(SMALL_SETS, protocol="psop", group_bits=768, seed=0)
        plain = PIAAuditor(SMALL_SETS, protocol="plaintext")
        p_report = psop.audit(ways=2)
        t_report = plain.audit(ways=2)
        assert [e.deployment for e in p_report.entries] == [
            e.deployment for e in t_report.entries
        ]
        for measured, truth in zip(p_report.entries, t_report.entries):
            assert measured.jaccard == pytest.approx(truth.jaccard)
        assert p_report.total_bytes > 0

    def test_minhash_estimates(self):
        sets = {
            "A": [f"s{i}" for i in range(60)] + [f"a{i}" for i in range(20)],
            "B": [f"s{i}" for i in range(60)] + [f"b{i}" for i in range(20)],
        }
        auditor = PIAAuditor(
            sets, protocol="psop-minhash", group_bits=768,
            minhash_size=128, seed=1,
        )
        value, estimated, _ = auditor.measure(("A", "B"))
        assert estimated
        assert value == pytest.approx(60 / 100, abs=0.15)


class TestTable2EndToEnd:
    def test_plaintext_reproduces_table_2_rankings(self):
        auditor = PIAAuditor(all_stack_packages(), protocol="plaintext")
        two = auditor.audit(ways=2, providers=list(CLOUDS))
        assert two.entries[0].deployment == ("Cloud2", "Cloud4")
        assert two.entries[-1].deployment == ("Cloud1", "Cloud2")
        three = auditor.audit(ways=3, providers=list(CLOUDS))
        assert three.entries[0].deployment == ("Cloud2", "Cloud3", "Cloud4")
        for entry in two.entries:
            assert entry.jaccard == pytest.approx(
                expected_jaccard(entry.deployment)
            )

    def test_no_entry_significantly_correlated(self):
        report = PIAAuditor(all_stack_packages(), protocol="plaintext").audit(
            ways=2
        )
        assert not any(e.significantly_correlated for e in report.entries)


class TestValidation:
    def test_needs_two_providers(self):
        with pytest.raises(ProtocolError):
            PIAAuditor({"only": ["x"]})

    def test_unknown_protocol(self):
        with pytest.raises(ProtocolError):
            PIAAuditor(SMALL_SETS, protocol="magic")

    def test_empty_provider_set(self):
        with pytest.raises(ProtocolError):
            PIAAuditor({"A": [], "B": ["x"]})

    def test_measure_unknown_provider(self):
        auditor = PIAAuditor(SMALL_SETS, protocol="plaintext")
        with pytest.raises(ProtocolError, match="unknown providers"):
            auditor.measure(("P1", "ghost"))

    def test_measure_single_provider(self):
        auditor = PIAAuditor(SMALL_SETS, protocol="plaintext")
        with pytest.raises(ProtocolError):
            auditor.measure(("P1",))
