"""Unit tests for MinHash Jaccard estimation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import HashFamily
from repro.errors import AnalysisError
from repro.privacy import estimate_jaccard, jaccard, minhash_signature
from repro.privacy.minhash import MinHashSignature


@pytest.fixture(scope="module")
def family() -> HashFamily:
    return HashFamily(size=256, seed=0)


class TestSignature:
    def test_signature_size(self, family):
        sig = minhash_signature(["a", "b", "c"], family)
        assert sig.size == 256

    def test_deterministic(self, family):
        a = minhash_signature(["a", "b"], family)
        b = minhash_signature(["b", "a"], family)
        assert a == b  # order independent

    def test_empty_rejected(self, family):
        with pytest.raises(AnalysisError):
            minhash_signature([], family)

    def test_slot_elements_tagged(self, family):
        sig = minhash_signature(["a"], family)
        elements = sig.slot_elements()
        assert len(elements) == 256
        assert elements[0].startswith("0:")
        assert elements[255].startswith("255:")

    def test_vectorised_signature_matches_per_call_hashing(self):
        """The (m, |S|) matrix path computes the exact family values."""
        family = HashFamily(size=16, seed=42)
        pool = ["libc6@2.19", "openssl@1.0", "nginx@1.4", "zlib@1.2"]
        sig = minhash_signature(pool, family)
        expected = tuple(
            min(family(i, e) for e in pool) for i in range(family.size)
        )
        assert sig.mins == expected

    def test_hash_matrix_cells_match_family_calls(self):
        family = HashFamily(size=5, seed=3)
        pool = ["a", "bb", "ccc"]
        matrix = family.hash_matrix(pool)
        assert matrix.shape == (5, 3)
        for i in range(5):
            for j, element in enumerate(pool):
                assert int(matrix[i, j]) == family(i, element)


class TestEstimation:
    def test_identical_sets_estimate_one(self, family):
        sig = minhash_signature(["a", "b", "c"], family)
        assert estimate_jaccard([sig, sig]) == 1.0

    def test_disjoint_sets_estimate_near_zero(self, family):
        a = minhash_signature([f"a{i}" for i in range(50)], family)
        b = minhash_signature([f"b{i}" for i in range(50)], family)
        assert estimate_jaccard([a, b]) < 0.05

    def test_estimation_accuracy_half_overlap(self, family):
        left = [f"s{i}" for i in range(100)] + [f"l{i}" for i in range(50)]
        right = [f"s{i}" for i in range(100)] + [f"r{i}" for i in range(50)]
        true = jaccard([set(left), set(right)])
        sig_l = minhash_signature(left, family)
        sig_r = minhash_signature(right, family)
        assert estimate_jaccard([sig_l, sig_r]) == pytest.approx(true, abs=0.1)

    def test_multi_way_estimation(self, family):
        shared = [f"s{i}" for i in range(60)]
        sigs = [
            minhash_signature(shared + [f"p{p}-{i}" for i in range(20)], family)
            for p in range(3)
        ]
        true = 60 / (60 + 3 * 20)
        assert estimate_jaccard(sigs) == pytest.approx(true, abs=0.12)

    def test_mismatched_sizes_rejected(self, family):
        a = minhash_signature(["x"], family)
        b = minhash_signature(["x"], HashFamily(size=16, seed=0))
        with pytest.raises(
            AnalysisError, match="same hash family size.*16, 256"
        ):
            estimate_jaccard([a, b])

    def test_empty_signatures_rejected(self):
        empty = MinHashSignature(mins=())
        with pytest.raises(AnalysisError, match="empty"):
            estimate_jaccard([empty, empty])

    def test_single_signature_rejected(self, family):
        with pytest.raises(AnalysisError):
            estimate_jaccard([minhash_signature(["x"], family)])


@settings(max_examples=20, deadline=None)
@given(
    shared=st.integers(10, 60),
    left=st.integers(0, 40),
    right=st.integers(0, 40),
)
def test_minhash_error_within_broder_bound(shared, left, right):
    """Property: |estimate - truth| stays within ~3 standard errors."""
    family = HashFamily(size=400, seed=7)
    shared_items = [f"s{i}" for i in range(shared)]
    set_l = shared_items + [f"l{i}" for i in range(left)]
    set_r = shared_items + [f"r{i}" for i in range(right)]
    true = jaccard([set(set_l), set(set_r)])
    estimate = estimate_jaccard(
        [minhash_signature(set_l, family), minhash_signature(set_r, family)]
    )
    assert abs(estimate - true) <= 3.5 / (400**0.5)
