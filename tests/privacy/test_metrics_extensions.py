"""Unit tests for the Sørensen–Dice metric and n-of-m PIA audits."""

import pytest

from repro.errors import AnalysisError, ProtocolError
from repro.privacy import PIAAuditor, jaccard, sorensen_dice


class TestSorensenDice:
    def test_two_sets(self):
        # |∩|=1, sizes 2+2: D = 2*1/4 = 0.5
        assert sorensen_dice([{"a", "b"}, {"b", "c"}]) == pytest.approx(0.5)

    def test_relation_to_jaccard(self):
        left = {f"s{i}" for i in range(30)} | {f"l{i}" for i in range(10)}
        right = {f"s{i}" for i in range(30)} | {f"r{i}" for i in range(20)}
        j = jaccard([left, right])
        d = sorensen_dice([left, right])
        assert d == pytest.approx(2 * j / (1 + j))

    def test_multi_way(self):
        sets = [{"x", "a"}, {"x", "b"}, {"x", "c"}]
        assert sorensen_dice(sets) == pytest.approx(3 * 1 / 6)

    def test_identical_sets(self):
        assert sorensen_dice([{"a"}, {"a"}]) == 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            sorensen_dice([{"a"}])
        with pytest.raises(AnalysisError):
            sorensen_dice([{"a"}, set()])


class TestNOfMAudit:
    SETS = {
        "C1": ["x", "a1", "a2"],
        "C2": ["x", "b1"],
        "C3": ["x", "c1", "c2", "c3"],
        "C4": ["y1", "y2"],
    }

    def test_entries_cover_n_subsets_plus_full_pool(self):
        auditor = PIAAuditor(self.SETS, protocol="plaintext")
        report = auditor.audit_n_of_m(2, providers=list(self.SETS))
        deployments = {e.deployment for e in report.entries}
        assert (tuple(self.SETS),) [0] in deployments  # the all-m entry
        assert len(deployments) == 6 + 1  # C(4,2) + full pool

    def test_n_equals_m_has_no_duplicate_entry(self):
        auditor = PIAAuditor(self.SETS, protocol="plaintext")
        report = auditor.audit_n_of_m(4, providers=list(self.SETS))
        assert len(report.entries) == 1

    def test_ranking_ascending(self):
        auditor = PIAAuditor(self.SETS, protocol="plaintext")
        report = auditor.audit_n_of_m(2, providers=list(self.SETS))
        values = [e.jaccard for e in report.entries]
        assert values == sorted(values)
        # C4 shares nothing with C1/C2: a disjoint pair ranks first.
        assert report.best().jaccard == 0.0

    def test_metadata_records_n_and_m(self):
        auditor = PIAAuditor(self.SETS, protocol="plaintext")
        report = auditor.audit_n_of_m(3, providers=list(self.SETS))
        assert report.metadata["n"] == 3
        assert report.metadata["m"] == 4

    def test_invalid_n_rejected(self):
        auditor = PIAAuditor(self.SETS, protocol="plaintext")
        with pytest.raises(ProtocolError):
            auditor.audit_n_of_m(1, providers=list(self.SETS))
        with pytest.raises(ProtocolError):
            auditor.audit_n_of_m(5, providers=list(self.SETS))
