"""Unit tests for the byte-accounting protocol network."""

import pytest

from repro.errors import ProtocolError
from repro.privacy import ProtocolNetwork
from repro.privacy.network_sim import int_wire_size


class TestIntWireSize:
    def test_fixed_width(self):
        assert int_wire_size(5, 128) == 128
        assert int_wire_size(2**1000, 128) == 128

    def test_overflow_rejected(self):
        with pytest.raises(ProtocolError):
            int_wire_size(2**1025, 128)

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            int_wire_size(-1, 16)


class TestProtocolNetwork:
    def make(self) -> ProtocolNetwork:
        net = ProtocolNetwork()
        net.register(["A", "B", "C"])
        return net

    def test_send_accounting(self):
        net = self.make()
        net.send("A", "B", 100, phase="p1")
        net.send("B", "C", 50, phase="p2")
        assert net.bytes_sent("A") == 100
        assert net.bytes_received("B") == 100
        assert net.bytes_sent("B") == 50
        assert net.total_bytes() == 150

    def test_send_elements_uses_fixed_width(self):
        net = self.make()
        net.send_elements("A", "B", [1, 2, 3], element_bytes=128)
        assert net.total_bytes() == 3 * 128

    def test_by_phase(self):
        net = self.make()
        net.send("A", "B", 10, phase="ring")
        net.send("B", "C", 20, phase="ring")
        net.send("C", "A", 5, phase="share")
        assert net.by_phase() == {"ring": 30, "share": 5}

    def test_megabytes(self):
        net = self.make()
        net.send("A", "B", 2 * 1024 * 1024)
        assert net.megabytes_total() == pytest.approx(2.0)

    def test_unknown_party_rejected(self):
        net = self.make()
        with pytest.raises(ProtocolError):
            net.send("A", "Z", 10)

    def test_self_send_rejected(self):
        net = self.make()
        with pytest.raises(ProtocolError):
            net.send("A", "A", 10)

    def test_negative_bytes_rejected(self):
        net = self.make()
        with pytest.raises(ProtocolError):
            net.send("A", "B", -1)

    def test_duplicate_registration_rejected(self):
        net = ProtocolNetwork()
        with pytest.raises(ProtocolError):
            net.register(["A", "A"])

    def test_per_party_sent(self):
        net = self.make()
        net.send("A", "B", 7)
        assert net.per_party_sent() == {"A": 7}
