"""Unit tests for PIA component normalisation (§4.2.3)."""

import pytest

from repro.errors import ProtocolError
from repro.privacy import (
    normalize_component_set,
    normalize_package,
    normalize_router,
)


class TestNormalizeRouter:
    def test_ip_kept_verbatim(self):
        assert normalize_router("192.168.1.254").identifier == "192.168.1.254"

    def test_name_lowercased(self):
        assert normalize_router("ISP-Router-EAST").identifier == (
            "isp-router-east"
        )

    def test_kind(self):
        assert str(normalize_router("10.0.0.1")) == "router:10.0.0.1"

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            normalize_router("  ")

    def test_same_router_from_two_providers_matches(self):
        a = normalize_router("PEERING-GW-1")
        b = normalize_router("peering-gw-1")
        assert a == b


class TestNormalizePackage:
    def test_at_form_kept(self):
        assert normalize_package("libc6@2.19").identifier == "libc6@2.19"

    def test_equals_form_rewritten(self):
        assert normalize_package("openssl=1.0.1k").identifier == (
            "openssl@1.0.1k"
        )

    def test_space_form_rewritten(self):
        assert normalize_package("zlib1g 1.2.8").identifier == "zlib1g@1.2.8"

    def test_bare_name_gets_unknown_version(self):
        assert normalize_package("libssl").identifier == "libssl@unknown"

    def test_case_insensitive(self):
        assert normalize_package("LibC6@2.19") == normalize_package(
            "libc6@2.19"
        )

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            normalize_package("")

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            normalize_package("@@@")


class TestNormalizeComponentSet:
    def test_combines_kinds(self):
        components = normalize_component_set(
            routers=["10.0.0.1"], packages=["libc6@2.19"]
        )
        assert components == frozenset(
            {"router:10.0.0.1", "package:libc6@2.19"}
        )

    def test_kinds_do_not_collide(self):
        components = normalize_component_set(
            routers=["shared"], packages=["shared"]
        )
        assert len(components) == 2

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            normalize_component_set()
