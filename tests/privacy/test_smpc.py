"""Unit tests for the toy SMPC baseline."""

import pytest

from repro.errors import ProtocolError
from repro.privacy import smpc_intersection_cardinality


class TestCorrectness:
    def test_intersection_counted(self):
        result = smpc_intersection_cardinality(
            ["x", "y", "z"], ["y", "z", "w"], seed=0
        )
        assert result.intersection == 2

    def test_disjoint(self):
        assert smpc_intersection_cardinality(["a"], ["b"]).intersection == 0

    def test_identical(self):
        result = smpc_intersection_cardinality(["a", "b"], ["b", "a"])
        assert result.intersection == 2

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            smpc_intersection_cardinality([], ["a"])


class TestCost:
    def test_quadratic_multiplications(self):
        result = smpc_intersection_cardinality(
            [f"a{i}" for i in range(10)], [f"b{i}" for i in range(7)]
        )
        assert result.multiplications == 70

    def test_bandwidth_grows_quadratically(self):
        small = smpc_intersection_cardinality(
            [f"a{i}" for i in range(5)], [f"b{i}" for i in range(5)]
        )
        big = smpc_intersection_cardinality(
            [f"a{i}" for i in range(10)], [f"b{i}" for i in range(10)]
        )
        # 4x the pairs => roughly 4x the traffic.
        assert big.total_bytes > 3 * small.total_bytes

    def test_this_is_why_indaas_uses_psop(self):
        """The §7 claim: SMPC cost explodes on a few hundred elements."""
        result = smpc_intersection_cardinality(
            [f"a{i}" for i in range(50)], [f"b{i}" for i in range(50)]
        )
        per_pair_bytes = result.total_bytes / result.multiplications
        elements = 100_000
        projected_gb = (elements**2 * per_pair_bytes) / 1e9
        assert projected_gb > 1000  # utterly impractical at cloud scale
