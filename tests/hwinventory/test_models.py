"""Unit tests for the hardware catalogue."""

import pytest

from repro.errors import DependencyDataError
from repro.hwinventory import (
    CATALOGUE,
    ComponentModel,
    component_types,
    models_of_type,
)


class TestCatalogue:
    def test_types_cover_essentials(self):
        types = component_types()
        for essential in ("CPU", "Disk", "NIC", "RAM"):
            assert essential in types

    def test_models_of_type(self):
        disks = models_of_type("Disk")
        assert all(m.type == "Disk" for m in disks)
        assert len(disks) >= 2  # batches need choice

    def test_unknown_type(self):
        with pytest.raises(DependencyDataError):
            models_of_type("Quantum")

    def test_failure_rates_valid(self):
        for model in CATALOGUE:
            assert 0.0 <= model.annual_failure_rate <= 1.0

    def test_model_names_unique(self):
        names = [m.model for m in CATALOGUE]
        assert len(names) == len(set(names))

    def test_invalid_rate_rejected(self):
        with pytest.raises(DependencyDataError):
            ComponentModel("CPU", "X", 1.5)
