"""Unit tests for hardware inventory generation."""

import pytest

from repro.errors import DependencyDataError
from repro.hwinventory import generate_inventory


SERVERS = [f"srv{i}" for i in range(12)]


class TestGenerateInventory:
    def test_every_server_provisioned(self):
        inventory = generate_inventory(SERVERS, seed=0)
        assert inventory.servers() == SERVERS
        for server in SERVERS:
            assert inventory.components(server)

    def test_batch_sharing(self):
        inventory = generate_inventory(SERVERS, batch_size=4, seed=1)
        # Servers 0-3 are one procurement batch: identical model lists.
        assert inventory.components("srv0") == inventory.components("srv3")

    def test_batches_differ_eventually(self):
        inventory = generate_inventory(
            [f"s{i}" for i in range(64)], batch_size=4, seed=2
        )
        listings = {inventory.components(s) for s in inventory.servers()}
        assert len(listings) > 1

    def test_batch_size_one_no_type_sharing_required(self):
        inventory = generate_inventory(
            SERVERS, batch_size=1, types=["Disk"], seed=3
        )
        # Each server draws its own model; at least the structure holds.
        for server in SERVERS:
            assert len(inventory.components(server)) == 1

    def test_unique_serial_types(self):
        inventory = generate_inventory(
            SERVERS,
            batch_size=4,
            types=["CPU", "Disk"],
            unique_serial_types=["Disk"],
            seed=4,
        )
        disks = {
            model
            for s in SERVERS
            for t, model in inventory.components(s)
            if t == "Disk"
        }
        assert len(disks) == len(SERVERS)  # serialised => all unique
        shared = inventory.shared_models()
        assert all("#" not in model for model in shared)

    def test_shared_models_lists_batch_members(self):
        inventory = generate_inventory(SERVERS, batch_size=6, seed=5)
        shared = inventory.shared_models()
        assert shared  # with 2 batches there must be sharing
        for servers in shared.values():
            assert len(servers) > 1

    def test_failure_rate_lookup(self):
        inventory = generate_inventory(SERVERS, seed=6)
        _type, model = inventory.components("srv0")[0]
        assert inventory.failure_rate(model) is not None
        assert inventory.failure_rate("unknown-model") is None

    def test_failure_rate_sees_through_serials(self):
        inventory = generate_inventory(
            SERVERS, types=["Disk"], unique_serial_types=["Disk"], seed=7
        )
        _type, model = inventory.components("srv0")[0]
        assert "#" in model
        assert inventory.failure_rate(model) is not None

    def test_as_mapping_shape(self):
        mapping = generate_inventory(SERVERS, seed=8).as_mapping()
        assert set(mapping) == set(SERVERS)

    def test_invalid_parameters(self):
        with pytest.raises(DependencyDataError):
            generate_inventory([], seed=0)
        with pytest.raises(DependencyDataError):
            generate_inventory(SERVERS, batch_size=0)

    def test_deterministic_for_seed(self):
        a = generate_inventory(SERVERS, seed=9).as_mapping()
        b = generate_inventory(SERVERS, seed=9).as_mapping()
        assert a == b
