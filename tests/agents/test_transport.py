"""ServiceClient + RemoteAuditingAgent against a live in-process service."""

import pytest

from repro import api
from repro.agents import (
    AuditingAgent,
    DataSource,
    RemoteAuditingAgent,
    ServiceClient,
)
from repro.agents.messages import AuditRequest as AgentAuditRequest
from repro.depdb.database import DepDB
from repro.errors import ServiceError, SpecificationError
from repro.service import JobManager, ServiceThread

from tests.service.conftest import DEPDB, make_request


@pytest.fixture(scope="module")
def service():
    handle = ServiceThread(JobManager(workers=2)).start()
    yield handle
    handle.stop()


@pytest.fixture
def client(service):
    with ServiceClient(service.url) as remote:
        yield remote


def direct_bytes(request: api.AuditRequest) -> bytes:
    result = api.execute_request(request)
    return (
        api.report_for_request(request, result.audit, result.structural_hash)
        .to_json()
        .encode("utf-8")
    )


class TestServiceClient:
    def test_rejects_non_http_urls(self):
        with pytest.raises(SpecificationError):
            ServiceClient("ftp://somewhere")
        with pytest.raises(SpecificationError):
            ServiceClient("not a url")

    def test_audit_round_trip_is_bit_identical(self, client):
        request = make_request(algorithm="sampling", rounds=2000, seed=61)
        report = client.audit(request, timeout=60)
        assert report.to_json().encode("utf-8") == direct_bytes(request)

    def test_submit_wait_report_by_hand(self, client):
        request = make_request(seed=62)
        submitted = client.submit(request)
        status = client.wait(submitted.job_id, timeout=60)
        assert status.state == "done"
        assert client.report_bytes(job_id=status.job_id) == direct_bytes(
            request
        )
        # And the content-addressed path serves the same bytes.
        assert client.report_bytes(key=status.report_key) == direct_bytes(
            request
        )

    def test_events_stream_ends_at_terminal(self, client):
        submitted = client.submit(make_request(seed=63))
        events = list(client.events(submitted.job_id))
        assert events[0]["event"] == "submitted"
        assert events[-1]["event"] == "done"
        assert all(e["kind"] == "event" for e in events)

    def test_repeat_audit_is_cached_server_side(self, client):
        request = make_request(seed=64)
        client.audit(request, timeout=60)
        snapshot = client.submit(request)
        assert snapshot.state == "done"
        assert snapshot.cached is True

    def test_server_error_maps_to_service_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not-found"

    def test_backpressure_surfaces_retry_after(self):
        handle = ServiceThread(
            JobManager(workers=0, per_tenant_limit=1, total_limit=2)
        ).start()
        try:
            with ServiceClient(handle.url) as remote:
                remote.submit(make_request(seed=71, tenant="acme"))
                with pytest.raises(ServiceError) as excinfo:
                    remote.submit(make_request(seed=72, tenant="acme"))
                assert excinfo.value.status == 429
                assert excinfo.value.code == "tenant-overloaded"
                assert excinfo.value.retry_after >= 1
        finally:
            handle.stop(drain=False)

    def test_unreachable_service_is_503(self):
        with ServiceClient("http://127.0.0.1:1") as remote:
            with pytest.raises(ServiceError) as excinfo:
                remote.health()
        assert excinfo.value.status == 503
        assert excinfo.value.code == "unreachable"

    def test_report_bytes_needs_exactly_one_selector(self, client):
        with pytest.raises(SpecificationError):
            client.report_bytes()
        with pytest.raises(SpecificationError):
            client.report_bytes(job_id="a", key="b")

    def test_cancel_round_trip(self):
        handle = ServiceThread(JobManager(workers=0)).start()
        try:
            with ServiceClient(handle.url) as remote:
                submitted = remote.submit(make_request(seed=73))
                assert remote.cancel(submitted.job_id).state == "cancelled"
        finally:
            handle.stop(drain=False)

    def test_health(self, client):
        health = client.health()
        assert health["kind"] == "health"
        assert health["status"] == "ok"


@pytest.fixture
def lab_sources():
    """One pre-collected data source holding the shared-ToR topology."""
    source = DataSource("lab")
    source.depdb = DepDB.loads(DEPDB)
    source._collected = True
    return {"lab": source}


class TestRemoteAuditingAgent:
    def agent_request(self):
        return AgentAuditRequest(
            client="alice",
            data_sources=("lab",),
            deployments=(("S1", "S2"), ("S1", "S3"), ("S2", "S3")),
            dependency_types=("network",),
        )

    def test_remote_ranking_matches_local_agent(self, client, lab_sources):
        remote = RemoteAuditingAgent(lab_sources, client, seed=0)
        local = AuditingAgent(lab_sources, seed=0)
        remote_report = remote.handle(self.agent_request()).report_dict()
        local_report = local.handle(self.agent_request()).report_dict()
        pick = lambda r: [  # noqa: E731
            (d["deployment"], d["score"]) for d in r["deployments"]
        ]
        assert pick(remote_report) == pick(local_report)
        # S1 & S2 share ToR1/Core1: ranked least independent by both.
        assert remote_report["deployments"][-1]["deployment"] == "S1 & S2"

    def test_remote_report_is_canonical(self, client, lab_sources):
        remote = RemoteAuditingAgent(lab_sources, client, seed=0)
        report = remote.handle(self.agent_request()).report_dict()
        assert report["kind"] == "audit_report"
        assert report["schema_version"] == api.SCHEMA_VERSION
        assert report["metadata"]["merged_from"] == 3

    def test_pia_mode_is_local_only(self, client, lab_sources):
        remote = RemoteAuditingAgent(lab_sources, client)
        request = AgentAuditRequest(
            client="alice",
            data_sources=("lab",),
            deployments=(("S1", "S2"),),
            mode="pia",
        )
        with pytest.raises(SpecificationError, match="local-only"):
            remote.handle(request)

    def test_unknown_sources_rejected(self, client, lab_sources):
        remote = RemoteAuditingAgent(lab_sources, client)
        request = AgentAuditRequest(
            client="alice",
            data_sources=("ghost",),
            deployments=(("S1", "S2"),),
        )
        with pytest.raises(SpecificationError, match="unknown data sources"):
            remote.handle(request)

    def test_needs_sources(self, client):
        with pytest.raises(SpecificationError):
            RemoteAuditingAgent({}, client)
