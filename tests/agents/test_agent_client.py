"""End-to-end tests for the Figure-1 workflow: client -> agent -> sources."""

import pytest

from repro.acquisition import (
    HardwareInventoryCollector,
    NetworkDependencyCollector,
)
from repro.agents import AuditingAgent, AuditingClient, DataSource
from repro.errors import SpecificationError
from repro.swinventory import software_records
from repro.topology import lab_cloud
from repro.topology.lab import LAB_HARDWARE, LabCloudPlan


@pytest.fixture
def lab_source() -> DataSource:
    plan = LabCloudPlan()
    topo = lab_cloud(plan)
    static = {s: list(plan.routes(s)) for s in plan.servers}
    return DataSource(
        "lab",
        modules=[
            NetworkDependencyCollector(
                topo, servers=list(plan.servers), static_routes=static
            ),
            HardwareInventoryCollector(LAB_HARDWARE),
        ],
    )


@pytest.fixture
def software_sources() -> dict:
    """Four single-provider sources with the Table-2 software stacks."""
    sources = {}
    for record in software_records():
        source = DataSource(f"{record.hw}")
        source.depdb.add(record)
        source._collected = True  # records injected directly
        sources[record.hw] = source
    return sources


class TestSIAWorkflow:
    def test_full_sia_round_trip(self, lab_source):
        agent = AuditingAgent({"lab": lab_source})
        client = AuditingClient("alice", agent)
        response = client.audit_all_pairs(
            ["lab"],
            ["Server1", "Server2", "Server3", "Server4"],
            dependency_types=("network", "hardware"),
        )
        assert response.mode == "sia"
        assert client.best_deployment(response) == ["Server2", "Server3"]

    def test_report_contains_all_pairs(self, lab_source):
        agent = AuditingAgent({"lab": lab_source})
        client = AuditingClient("alice", agent)
        response = client.audit_all_pairs(
            ["lab"],
            ["Server1", "Server2", "Server3"],
            dependency_types=("network", "hardware"),
        )
        report = response.report_dict()
        assert len(report["deployments"]) == 3

    def test_unknown_source_rejected(self, lab_source):
        agent = AuditingAgent({"lab": lab_source})
        client = AuditingClient("alice", agent)
        with pytest.raises(SpecificationError, match="unknown data sources"):
            client.request_audit(["ghost"], [["Server1", "Server2"]])

    def test_agent_needs_sources(self):
        with pytest.raises(SpecificationError):
            AuditingAgent({})

    def test_client_needs_name(self, lab_source):
        agent = AuditingAgent({"lab": lab_source})
        with pytest.raises(SpecificationError):
            AuditingClient("", agent)


class TestPIAWorkflow:
    def test_full_pia_round_trip(self, software_sources):
        agent = AuditingAgent(software_sources, pia_group_bits=768)
        client = AuditingClient("alice", agent)
        clouds = [f"Cloud{i}-node" for i in (1, 2, 3, 4)]
        response = client.request_audit(
            data_sources=clouds,
            deployments=[
                [a, b]
                for i, a in enumerate(clouds)
                for b in clouds[i + 1:]
            ],
            mode="pia",
            dependency_types=("software",),
        )
        assert response.mode == "pia"
        # Table 2: Cloud2 & Cloud4 is the most independent pair.
        assert client.best_deployment(response) == [
            "Cloud2-node",
            "Cloud4-node",
        ]

    def test_mixed_arities_rejected(self, software_sources):
        agent = AuditingAgent(software_sources, pia_group_bits=768)
        client = AuditingClient("alice", agent)
        with pytest.raises(SpecificationError, match="one redundancy arity"):
            client.request_audit(
                data_sources=list(software_sources),
                deployments=[["Cloud1-node", "Cloud2-node"],
                             ["Cloud1-node", "Cloud2-node", "Cloud3-node"]],
                mode="pia",
            )
