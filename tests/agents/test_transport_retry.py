"""Retrying transport: backoff, Retry-After, long-poll, truncation.

Satellite regressions pinned here:

* an unparseable ``Retry-After`` header falls back to the default
  backoff and annotates the error (never silently ``None``);
* :meth:`ServiceClient.wait` long-polls — the HTTP request count for a
  slow job is a handful, not one per poll interval;
* a JSONL event line torn mid-stream surfaces as a typed retryable
  ``stream-truncated`` :class:`~repro.errors.ServiceError`, never a raw
  ``json.JSONDecodeError``.
"""

import os

import pytest

from repro import api
from repro.agents.transport import RetryPolicy, ServiceClient
from repro.errors import IndaasError, ServiceError, SpecificationError
from repro.service import JobManager, ServiceThread
from repro.testing.faults import Fault, FaultInjector, FaultSchedule

from tests.service.conftest import make_request

SEED = int(os.environ.get("REPRO_FAULT_SEED", "20140807"))


@pytest.fixture
def service():
    handle = ServiceThread(JobManager(workers=1)).start()
    yield handle
    handle.stop()


@pytest.fixture
def client(service):
    with ServiceClient(service.url, retry=RetryPolicy(seed=SEED)) as remote:
        yield remote


class TestRetryPolicy:
    def test_delays_are_deterministic_per_seed(self):
        policy = RetryPolicy(retries=6, seed=SEED)
        assert list(policy.delays()) == list(policy.delays())
        assert list(policy.delays()) != list(
            RetryPolicy(retries=6, seed=SEED + 1).delays()
        )

    def test_delays_are_capped_exponential(self):
        policy = RetryPolicy(retries=8, backoff=1.0, cap=4.0, jitter=0.0)
        assert list(policy.delays()) == [1.0, 2.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0]

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(retries=50, backoff=1.0, cap=1.0, jitter=0.25)
        assert all(0.75 <= delay <= 1.25 for delay in policy.delays())

    def test_validation(self):
        with pytest.raises(SpecificationError):
            RetryPolicy(retries=-1)
        with pytest.raises(SpecificationError):
            RetryPolicy(backoff=0.5, cap=0.1)
        with pytest.raises(SpecificationError):
            RetryPolicy(jitter=1.5)


class TestRetryAfterParsing:
    def test_parseable_header_is_honoured(self):
        error = ServiceClient._error_for(429, {"Retry-After": "7"}, b"{}")
        assert error.retry_after == 7.0
        assert error.retryable

    def test_unparseable_header_falls_back_and_annotates(self):
        error = ServiceClient._error_for(
            429, {"Retry-After": "Wed, 21 Oct"}, b"{}"
        )
        # Satellite fix: never silently None — the retry loop must
        # still back off, and the operator must see why.
        assert error.retry_after == 1.0
        assert "unparseable Retry-After" in str(error)

    def test_missing_header_stays_none(self):
        error = ServiceClient._error_for(503, {}, b"{}")
        assert error.retry_after is None
        assert error.retryable

    def test_non_load_statuses_are_not_retryable(self):
        assert not ServiceClient._error_for(404, {}, b"{}").retryable
        assert not ServiceClient._error_for(500, {}, b"{}").retryable


class TestRetries:
    def test_connection_reset_is_retried_to_success(self, client):
        schedule = FaultSchedule(
            (Fault(kind="connection-reset", point="transport.request", at=0),)
        )
        with FaultInjector(schedule) as injector:
            assert client.health()["status"] == "ok"
        assert injector.fired
        assert client.retry_count == 1

    def test_retries_exhausted_surfaces_the_error(self, service):
        schedule = FaultSchedule(
            (
                Fault(
                    kind="connection-reset",
                    point="transport.request",
                    at=0,
                    times=3,
                ),
            )
        )
        policy = RetryPolicy(retries=2, backoff=0.01, seed=SEED)
        with ServiceClient(service.url, retry=policy) as remote:
            with FaultInjector(schedule):
                with pytest.raises(ServiceError) as excinfo:
                    remote.health()
        assert excinfo.value.code == "unreachable"
        assert excinfo.value.retryable

    def test_retry_disabled_fails_fast(self, service):
        schedule = FaultSchedule(
            (Fault(kind="connection-reset", point="transport.request", at=0),)
        )
        with ServiceClient(service.url, retry=None) as remote:
            with FaultInjector(schedule):
                with pytest.raises(ServiceError):
                    remote.health()
            assert remote.retry_count == 0

    def test_submit_retry_attaches_to_the_first_job(self, service):
        """A retried POST whose first response was lost must not
        enqueue a duplicate: the Idempotency-Key re-attaches it."""
        saturated = ServiceThread(JobManager(workers=0)).start()
        try:
            policy = RetryPolicy(retries=2, backoff=0.01, seed=SEED)
            with ServiceClient(saturated.url, retry=policy) as remote:
                request = make_request(seed=101)
                first = remote.submit(request)
                repeat = remote.submit(request)  # same fingerprint key
                assert repeat.job_id == first.job_id
        finally:
            saturated.stop()


class TestLongPollWait:
    def test_wait_uses_a_handful_of_requests(self, client):
        request = make_request(algorithm="sampling", rounds=60_000, seed=102)
        submitted = client.submit(request)
        before = client.request_count
        status = client.wait(submitted.job_id, timeout=60)
        assert status.state == "done"
        used = client.request_count - before
        # Long-polling: one poll request (possibly a couple on slow
        # machines) plus the final status fetch.  The old fixed-interval
        # poller burned ~10 requests per second of runtime.
        assert used <= 4, f"wait() made {used} HTTP requests"

    def test_wait_falls_back_to_bounded_polling(self, client, monkeypatch):
        request = make_request(seed=103)
        submitted = client.submit(request)

        def gone(*args, **kwargs):
            raise ServiceError("no such endpoint", status=404, code="not-found")

        monkeypatch.setattr(client, "events_after", gone)
        status = client.wait(submitted.job_id, timeout=60)
        assert status.state == "done"
        assert client._long_poll_supported is False

    def test_wait_timeout_raises_typed_error(self, service):
        stalled = ServiceThread(JobManager(workers=0)).start()
        try:
            with ServiceClient(stalled.url) as remote:
                submitted = remote.submit(make_request(seed=104))
                with pytest.raises(ServiceError) as excinfo:
                    remote.wait(submitted.job_id, timeout=0.3)
            assert excinfo.value.code == "timeout"
        finally:
            stalled.stop()

    def test_events_after_pages_incrementally(self, client):
        submitted = client.submit(make_request(seed=105))
        client.wait(submitted.job_id, timeout=60)
        events, terminal = client.events_after(submitted.job_id, 0, wait=0)
        assert terminal
        seqs = [event["seq"] for event in events]
        assert seqs == list(range(1, len(events) + 1))
        tail, _ = client.events_after(submitted.job_id, seqs[-2], wait=0)
        assert [event["seq"] for event in tail] == [seqs[-1]]


class TestStreamTruncation:
    def test_truncation_is_a_typed_retryable_error(self, client):
        submitted = client.submit(make_request(seed=106))
        client.wait(submitted.job_id, timeout=60)
        schedule = FaultSchedule(
            (
                Fault(
                    kind="stream-truncate",
                    point="server.stream-chunk",
                    at=1,
                ),
            )
        )
        with FaultInjector(schedule) as injector:
            with pytest.raises(IndaasError) as excinfo:
                list(client.events(submitted.job_id))
        assert injector.fired
        error = excinfo.value
        assert isinstance(error, ServiceError)  # never json.JSONDecodeError
        assert error.code == "stream-truncated"
        assert error.retryable

    def test_follow_events_resumes_without_loss_or_duplication(self, client):
        submitted = client.submit(make_request(seed=107))
        client.wait(submitted.job_id, timeout=60)
        intact = list(client.events(submitted.job_id))
        schedule = FaultSchedule(
            (
                Fault(
                    kind="stream-truncate",
                    point="server.stream-chunk",
                    at=2,
                ),
            )
        )
        with FaultInjector(schedule) as injector:
            followed = list(client.follow_events(submitted.job_id))
        assert injector.fired
        assert [e["seq"] for e in followed] == [e["seq"] for e in intact]


class TestRemoteAudit:
    def test_audit_under_seeded_chaos_stays_bit_identical(self, service):
        """The acceptance shape: a seeded chaos schedule perturbs the
        transport, the report bytes do not change."""
        request = make_request(algorithm="sampling", rounds=2000, seed=108)
        with ServiceClient(service.url, retry=RetryPolicy(seed=SEED)) as calm:
            reference = calm.audit(request, timeout=60).to_json()
        schedule = FaultSchedule.seeded(
            SEED, n=3, points=("transport.request", "server.dispatch")
        )
        policy = RetryPolicy(retries=6, backoff=0.01, seed=SEED)
        with ServiceClient(service.url, retry=policy) as chaotic:
            with FaultInjector(schedule):
                chaos_report = chaotic.audit(request, timeout=60).to_json()
        assert chaos_report == reference
        direct = api.execute_request(request)
        assert (
            api.report_for_request(
                request, direct.audit, direct.structural_hash
            ).to_json()
            == reference
        )
