"""Unit tests for the data source role."""

import pytest

from repro.acquisition import (
    HardwareInventoryCollector,
    NetworkDependencyCollector,
)
from repro.agents import DataSource, DependencyDataRequest
from repro.errors import AcquisitionError
from repro.topology import lab_cloud
from repro.topology.lab import LAB_HARDWARE


@pytest.fixture
def source() -> DataSource:
    topo = lab_cloud()
    return DataSource(
        "lab",
        modules=[
            NetworkDependencyCollector(topo, servers=["Server1", "Server2"]),
            HardwareInventoryCollector(
                LAB_HARDWARE, servers=["Server1", "Server2"]
            ),
        ],
    )


class TestCollect:
    def test_collect_fills_depdb(self, source):
        counts = source.collect()
        assert sum(counts.values()) > 0
        assert source.depdb.counts()["network"] == 4

    def test_collect_idempotent(self, source):
        source.collect()
        assert source.collect() == {}  # cached

    def test_no_modules_rejected(self):
        with pytest.raises(AcquisitionError, match="no acquisition modules"):
            DataSource("empty").collect()

    def test_empty_name_rejected(self):
        with pytest.raises(AcquisitionError):
            DataSource("")


class TestHandle:
    def test_serves_requested_types_only(self, source):
        response = source.handle(
            DependencyDataRequest(
                source="lab", dependency_types=("network",)
            )
        )
        assert response.record_count == 4
        assert "<src=" in response.payload
        assert "<hw=" not in response.payload

    def test_server_filter(self, source):
        response = source.handle(
            DependencyDataRequest(
                source="lab",
                dependency_types=("network", "hardware"),
                servers=("Server1",),
            )
        )
        assert "Server2" not in response.payload

    def test_wrong_source_rejected(self, source):
        with pytest.raises(AcquisitionError, match="reached"):
            source.handle(
                DependencyDataRequest(
                    source="other", dependency_types=("network",)
                )
            )

    def test_payload_round_trips(self, source):
        from repro.depdb import DepDB

        response = source.handle(
            DependencyDataRequest(
                source="lab", dependency_types=("network", "hardware")
            )
        )
        clone = DepDB.loads(response.payload)
        assert len(clone) == response.record_count


class TestProviderView:
    def test_component_set(self, source):
        components = source.component_set()
        assert "Switch1" in components

    def test_hardware_kinds(self, source):
        components = source.component_set(include_kinds=("hardware",))
        assert "SED900" in components
