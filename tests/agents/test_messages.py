"""Unit tests for workflow messages."""

import json

import pytest

from repro.agents import AuditRequest, AuditResponse
from repro.errors import SpecificationError


class TestAuditRequest:
    def valid(self, **overrides):
        kwargs = dict(
            client="alice",
            data_sources=("dc1",),
            deployments=(("S1", "S2"),),
        )
        kwargs.update(overrides)
        return AuditRequest(**kwargs)

    def test_valid_request(self):
        request = self.valid()
        assert request.mode == "sia"
        assert request.metric == "size"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"client": ""},
            {"data_sources": ()},
            {"deployments": ()},
            {"mode": "magic"},
            {"metric": "vibes"},
            {"dependency_types": ("quantum",)},
        ],
    )
    def test_invalid_requests(self, overrides):
        with pytest.raises(SpecificationError):
            self.valid(**overrides)

    def test_json_serialisable(self):
        payload = json.loads(self.valid().to_json())
        assert payload["client"] == "alice"
        assert payload["deployments"] == [["S1", "S2"]]


class TestAuditResponse:
    def test_report_dict(self):
        response = AuditResponse(
            client="alice", report_json='{"x": 1}', mode="sia"
        )
        assert response.report_dict() == {"x": 1}
