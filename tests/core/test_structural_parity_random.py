"""Randomized structural-parity harness (ISSUE 4 satellite).

Extends the seeded-fuzzer idea of ``tests/engine/test_parity_random.py``
to the exact structural layer: for a corpus of random fault graphs
(AND / OR / k-of-n gates, shared subtrees), the BDD minimal-cut-set
extraction, the MOCUS traversal and the ``auto`` front door must return
bit-identical sorted families, every member must pass the
:func:`is_minimal_risk_group` oracle, and the mitigation planner must
emit identical plans for any worker count.

Everything derives from one master seed so a failure reproduces
exactly; bump ``GRAPH_COUNT`` locally to fuzz harder.
"""

import json
import random

import pytest

from repro import FaultGraph, GateType, minimal_risk_groups
from repro.analysis.planner import MitigationPlanner
from repro.core.bdd import compile_graph
from repro.core.minimal_rg import is_minimal_risk_group, is_risk_group
from repro.engine import AuditEngine

MASTER_SEED = 0xBDD5EED
GRAPH_COUNT = 25


def random_fault_graph(rng: random.Random, index: int) -> FaultGraph:
    """A random DAG of AND/OR/k-of-n gates over 2..8 shared leaves."""
    graph = FaultGraph(f"structural-random-{index}")
    nodes = [
        graph.add_basic_event(f"L{i}")
        for i in range(rng.randint(2, 8))
    ]
    for i in range(rng.randint(1, 6)):
        fan = rng.randint(1, min(4, len(nodes)))
        children = rng.sample(nodes, fan)
        gate = rng.choice(
            [GateType.AND, GateType.OR, GateType.K_OF_N]
        )
        k = rng.randint(1, fan) if gate is GateType.K_OF_N else None
        nodes.append(graph.add_gate(f"G{i}", gate, children, k=k))
    reachable = graph.descendants(nodes[-1]) | {nodes[-1]}
    orphans = [
        name
        for name in graph.events()
        if name not in reachable and not graph.parents(name)
    ]
    if orphans:
        graph.add_gate("ROOT", GateType.OR, [nodes[-1], *orphans], top=True)
    else:
        graph.set_top(nodes[-1])
    return graph


def random_cases():
    rng = random.Random(MASTER_SEED)
    return [
        pytest.param(random_fault_graph(rng, index), id=f"graph{index}")
        for index in range(GRAPH_COUNT)
    ]


@pytest.mark.parametrize("graph", random_cases())
def test_bdd_mocus_and_auto_families_are_bit_identical(graph):
    mocus = minimal_risk_groups(graph, method="mocus")
    bdd_route = minimal_risk_groups(graph, method="bdd")
    auto = minimal_risk_groups(graph)
    direct = compile_graph(graph).minimal_cut_sets()
    assert bdd_route == mocus
    assert auto == mocus
    assert direct == mocus


@pytest.mark.parametrize("graph", random_cases())
def test_families_pass_the_minimality_oracle(graph):
    groups = minimal_risk_groups(graph, method="bdd")
    for group in groups:
        assert is_minimal_risk_group(graph, group)
    # Spot-check the complement: growing a group keeps it a (non-minimal)
    # risk group, so the oracle must reject the enlarged set.
    leaves = set(graph.basic_events())
    for group in groups[:5]:
        extra = sorted(leaves - group)
        if not extra:
            continue
        enlarged = set(group) | {extra[0]}
        assert is_risk_group(graph, enlarged)
        assert not is_minimal_risk_group(graph, enlarged)


@pytest.mark.parametrize("graph", random_cases()[:8])
def test_truncated_families_agree(graph):
    for order in (1, 2):
        assert minimal_risk_groups(
            graph, max_order=order, method="bdd"
        ) == minimal_risk_groups(graph, max_order=order, method="mocus")


def test_planner_worker_invariance_on_random_graphs():
    """One plan per worker count, byte-compared via canonical JSON."""
    rng = random.Random(MASTER_SEED + 1)
    for index in range(3):
        graph = random_fault_graph(rng, 100 + index)
        weighted = graph.map_probabilities(
            lambda e: round(0.02 + rng.random() * 0.2, 4)
        )
        serial = MitigationPlanner(weighted).plan(top_k=3)
        engine = AuditEngine(n_workers=2)
        parallel = MitigationPlanner(weighted, engine=engine).plan(top_k=3)
        assert json.dumps(parallel.to_dict()) == json.dumps(serial.to_dict())
