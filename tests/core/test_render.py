"""Unit tests for DOT and Markdown rendering."""

import pytest

from repro import RankingMethod
from repro.core.render import report_markdown, to_dot
from repro.core.ranking import RankedRiskGroup
from repro.core.report import AuditReport, DeploymentAudit
from repro.errors import AnalysisError


class TestToDot:
    def test_structure(self, figure_4a):
        dot = to_dot(figure_4a)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"A2"' in dot
        assert "shape=box" in dot       # gates
        assert "shape=ellipse" in dot   # leaves
        assert '"A2" -> "E1";' in dot

    def test_top_highlighted(self, figure_4a):
        dot = to_dot(figure_4a)
        assert "#d9ead3" in dot

    def test_risk_group_highlight(self, figure_4a):
        dot = to_dot(figure_4a, highlight=["A2"])
        assert "#f4cccc" in dot

    def test_unknown_highlight_rejected(self, figure_4a):
        with pytest.raises(AnalysisError):
            to_dot(figure_4a, highlight=["ghost"])

    def test_probabilities_in_labels(self, figure_4b):
        assert "p=0.2" in to_dot(figure_4b)

    def test_k_of_n_label(self):
        from repro import FaultGraph, GateType

        g = FaultGraph()
        for name in "abc":
            g.add_basic_event(name)
        g.add_gate("top", GateType.K_OF_N, list("abc"), k=2, top=True)
        assert ">=2" in to_dot(g)

    def test_invalid_rankdir(self, figure_4a):
        with pytest.raises(AnalysisError):
            to_dot(figure_4a, rankdir="XX")


class TestReportMarkdown:
    def make_report(self) -> AuditReport:
        audit = DeploymentAudit(
            deployment="S1 & S2",
            sources=("S1", "S2"),
            redundancy=2,
            ranking=[
                RankedRiskGroup(rank=1, events=frozenset({"shared"})),
                RankedRiskGroup(rank=2, events=frozenset({"a", "b"})),
            ],
            score=3.0,
            ranking_method=RankingMethod.SIZE,
            failure_probability=0.12,
        )
        return AuditReport(
            title="demo", audits=[audit], ranking_method=RankingMethod.SIZE
        )

    def test_contains_table_and_sections(self):
        text = report_markdown(self.make_report())
        assert text.startswith("# INDaaS auditing report: demo")
        assert "| 1 | S1 & S2 | 3 | 0.12 | 1 |" in text
        assert "## S1 & S2" in text
        assert "`{shared}` **(unexpected)**" in text
        assert "`{a, b}`" in text
