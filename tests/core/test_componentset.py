"""Unit tests for the component-set level of detail."""

import pytest

from repro import ComponentSets, GateType, component_sets_from_graph, minimal_risk_groups
from repro.errors import FaultGraphError


class TestComponentSets:
    def test_from_mapping_freezes(self):
        sets = ComponentSets.from_mapping({"E1": ["A1", "A2"]})
        assert sets.sets["E1"] == frozenset({"A1", "A2"})

    def test_empty_set_rejected(self):
        with pytest.raises(FaultGraphError, match="empty"):
            ComponentSets.from_mapping({"E1": []})

    def test_components_union(self):
        sets = ComponentSets.from_mapping(
            {"E1": ["A1", "A2"], "E2": ["A2", "A3"]}
        )
        assert sets.components() == frozenset({"A1", "A2", "A3"})

    def test_shared_components_figure_4a(self):
        sets = ComponentSets.from_mapping(
            {"E1": ["A1", "A2"], "E2": ["A2", "A3"]}
        )
        assert sets.shared_components() == frozenset({"A2"})

    def test_shared_components_three_sources(self):
        sets = ComponentSets.from_mapping(
            {"E1": ["x", "y"], "E2": ["y", "z"], "E3": ["z", "w"]}
        )
        assert sets.shared_components() == frozenset({"y", "z"})

    def test_common_to_all(self):
        sets = ComponentSets.from_mapping(
            {"E1": ["s", "a"], "E2": ["s", "b"], "E3": ["s", "c"]}
        )
        assert sets.common_to_all() == frozenset({"s"})

    def test_common_to_all_empty_when_disjointish(self):
        sets = ComponentSets.from_mapping({"E1": ["a"], "E2": ["b"]})
        assert sets.common_to_all() == frozenset()


class TestToFaultGraph:
    def test_and_of_ors_structure(self, figure_4a):
        top = figure_4a.top
        assert figure_4a.event(top).gate is GateType.AND
        assert set(figure_4a.children(top)) == {"E1", "E2"}
        assert figure_4a.event("E1").gate is GateType.OR
        # A2 is a shared leaf.
        assert set(figure_4a.parents("A2")) == {"E1", "E2"}

    def test_figure_4a_minimal_rgs(self, figure_4a):
        groups = minimal_risk_groups(figure_4a)
        assert groups == [frozenset({"A2"}), frozenset({"A1", "A3"})]

    def test_single_source_top_is_the_source(self):
        sets = ComponentSets.from_mapping({"only": ["a", "b"]})
        graph = sets.to_fault_graph()
        assert graph.top == "only"

    def test_partial_redundancy_uses_k_of_n(self):
        sets = ComponentSets.from_mapping(
            {"E1": ["a"], "E2": ["b"], "E3": ["c"]}, required=2
        )
        graph = sets.to_fault_graph()
        # Needs 2 alive of 3 => fails when 2 fail.
        assert graph.threshold(graph.top) == 2
        assert graph.evaluate(["a", "b"])
        assert not graph.evaluate(["a"])

    def test_default_requires_all_failures(self):
        sets = ComponentSets.from_mapping({"E1": ["a"], "E2": ["b"]})
        graph = sets.to_fault_graph()
        assert not graph.evaluate(["a"])
        assert graph.evaluate(["a", "b"])


class TestDowngrade:
    def test_round_trip_from_graph(self, figure_4a):
        sets = component_sets_from_graph(figure_4a)
        assert sets.sets == {
            "E1": frozenset({"A1", "A2"}),
            "E2": frozenset({"A2", "A3"}),
        }

    def test_downgrade_flattens_deep_structure(self, deep_graph):
        sets = component_sets_from_graph(deep_graph)
        assert sets.sets["S1"] == frozenset({"tor1", "core", "libc6"})
        assert sets.sets["S2"] == frozenset({"tor2", "core", "libc6"})

    def test_downgrade_is_pessimistic(self, deep_graph):
        """Flattening discards internal redundancy, so every cut set of
        the original graph is still a cut set of the flat one."""
        flat = component_sets_from_graph(deep_graph).to_fault_graph()
        for cut in minimal_risk_groups(deep_graph):
            assert flat.evaluate(cut)

    def test_downgrade_preserves_k_of_n_required(self):
        sets = ComponentSets.from_mapping(
            {"E1": ["a"], "E2": ["b"], "E3": ["c"]}, required=2
        )
        graph = sets.to_fault_graph()
        back = component_sets_from_graph(graph)
        assert back.required == 2
