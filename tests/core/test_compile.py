"""Unit tests for the compiled (vectorised) fault-graph evaluator."""

import numpy as np
import pytest

from repro import FaultGraph
from repro.core.compile import CompiledGraph
from repro.errors import FaultGraphError


@pytest.fixture
def compiled(deep_graph) -> CompiledGraph:
    return CompiledGraph(deep_graph)


class TestCompilation:
    def test_basic_names_follow_topo_order(self, compiled, deep_graph):
        assert set(compiled.basic_names) == set(deep_graph.basic_events())
        assert compiled.n_basic == 4

    def test_top_index_points_at_top(self, compiled, deep_graph):
        assert compiled.order[compiled.top_index] == deep_graph.top

    def test_requires_valid_graph(self):
        g = FaultGraph()
        g.add_basic_event("a")
        with pytest.raises(FaultGraphError):
            CompiledGraph(g)  # no top event


class TestBatchEvaluation:
    def test_matches_reference_evaluator(self, compiled, deep_graph):
        rng = np.random.default_rng(0)
        failures = rng.random((64, compiled.n_basic)) < 0.5
        batch_top = compiled.evaluate_batch(failures)
        for row in range(64):
            failed = {
                compiled.basic_names[i]
                for i in np.flatnonzero(failures[row])
            }
            assert batch_top[row] == deep_graph.evaluate(failed)

    def test_return_all_shape(self, compiled):
        failures = np.zeros((3, compiled.n_basic), dtype=bool)
        values = compiled.evaluate_batch(failures, return_all=True)
        assert values.shape == (3, compiled.n_nodes)
        assert not values.any()

    def test_wrong_width_rejected(self, compiled):
        with pytest.raises(FaultGraphError, match="expected shape"):
            compiled.evaluate_batch(np.zeros((2, 99), dtype=bool))

    def test_top_fails_helper(self, compiled):
        assert compiled.top_fails(["libc6"])
        assert not compiled.top_fails(["tor1"])


class TestWitnessExtraction:
    def test_witness_is_a_risk_group(self, compiled, deep_graph):
        values = compiled.evaluate_assignment(range(compiled.n_basic))
        witness = compiled.extract_witness(values)
        assert deep_graph.evaluate(witness)
        # prefers the cheapest path: the shared libc6 singleton
        assert witness == frozenset({"libc6"})

    def test_witness_requires_failure(self, compiled):
        values = compiled.evaluate_assignment([])
        with pytest.raises(FaultGraphError, match="did not fail"):
            compiled.extract_witness(values)

    def test_witness_without_shortcut(self, compiled, deep_graph):
        # Fail everything except libc6: witness must use the tor/core cut.
        positions = [
            i for i, n in enumerate(compiled.basic_names) if n != "libc6"
        ]
        values = compiled.evaluate_assignment(positions)
        witness = compiled.extract_witness(values)
        assert "libc6" not in witness
        assert deep_graph.evaluate(witness)


class TestMinimiseCut:
    def test_minimises_to_minimal_rg(self, compiled, deep_graph):
        minimal = compiled.minimise_cut(
            ["libc6", "tor1", "tor2", "core"]
        )
        assert deep_graph.evaluate(minimal)
        for event in minimal:
            assert not deep_graph.evaluate(set(minimal) - {event})

    def test_rejects_non_risk_group(self, compiled):
        with pytest.raises(FaultGraphError, match="not a risk group"):
            compiled.minimise_cut(["tor1"])


class TestSampling:
    def test_uniform_sampling_rate(self, compiled):
        rng = np.random.default_rng(1)
        draws = compiled.sample_failures(4000, None, rng, 0.25)
        assert draws.shape == (4000, compiled.n_basic)
        assert abs(draws.mean() - 0.25) < 0.03

    def test_weighted_sampling(self, compiled):
        rng = np.random.default_rng(2)
        weights = [0.0, 1.0, 0.5, 0.5]
        draws = compiled.sample_failures(2000, weights, rng)
        assert not draws[:, 0].any()
        assert draws[:, 1].all()

    def test_weight_shape_checked(self, compiled):
        rng = np.random.default_rng(3)
        with pytest.raises(FaultGraphError):
            compiled.sample_failures(10, [0.5], rng)
