"""Unit tests for audit reports."""

import json

import pytest

from repro import RankingMethod
from repro.core.ranking import RankedRiskGroup
from repro.core.report import AuditReport, DeploymentAudit
from repro.errors import AnalysisError


def audit(name, sizes, score, prob=None, redundancy=2):
    ranking = [
        RankedRiskGroup(rank=i + 1, events=frozenset(f"e{i}-{j}" for j in range(s)))
        for i, s in enumerate(sizes)
    ]
    return DeploymentAudit(
        deployment=name,
        sources=(f"{name}-1", f"{name}-2"),
        redundancy=redundancy,
        ranking=ranking,
        score=score,
        ranking_method=RankingMethod.SIZE,
        failure_probability=prob,
    )


class TestDeploymentAudit:
    def test_unexpected_risk_groups(self):
        a = audit("d", sizes=[1, 2, 2], score=5)
        assert len(a.unexpected_risk_groups) == 1
        assert a.has_unexpected_risk_groups

    def test_no_unexpected(self):
        assert not audit("d", sizes=[2, 3], score=5).has_unexpected_risk_groups

    def test_top_risk_groups_limit(self):
        a = audit("d", sizes=[1, 2, 2, 3], score=8)
        assert len(a.top_risk_groups(2)) == 2

    def test_to_dict_shape(self):
        payload = audit("d", sizes=[1, 2], score=3, prob=0.1).to_dict()
        assert payload["deployment"] == "d"
        assert payload["failure_probability"] == 0.1
        assert len(payload["ranking"]) == 2
        assert payload["unexpected_risk_groups"] == [["e0-0"]]


class TestAuditReport:
    def make_report(self):
        return AuditReport(
            title="t",
            audits=[
                audit("worst", sizes=[1, 1], score=2, prob=0.5),
                audit("best", sizes=[2, 2], score=4, prob=0.1),
                audit("mid", sizes=[2, 2], score=4, prob=0.3),
            ],
            ranking_method=RankingMethod.SIZE,
        )

    def test_needs_audits(self):
        with pytest.raises(AnalysisError):
            AuditReport(title="t", audits=[], ranking_method=RankingMethod.SIZE)

    def test_method_consistency_enforced(self):
        bad = audit("x", sizes=[1], score=1)
        bad.ranking_method = RankingMethod.PROBABILITY
        with pytest.raises(AnalysisError, match="ranking method"):
            AuditReport(
                title="t", audits=[bad], ranking_method=RankingMethod.SIZE
            )

    def test_size_ranking_descends_then_probability_breaks_ties(self):
        report = self.make_report()
        names = [a.deployment for a in report.ranked_deployments()]
        assert names == ["best", "mid", "worst"]

    def test_probability_method_ascends(self):
        audits = []
        for name, score in (("good", 0.1), ("bad", 0.9)):
            a = audit(name, sizes=[1], score=score)
            a.ranking_method = RankingMethod.PROBABILITY
            audits.append(a)
        report = AuditReport(
            title="t", audits=audits, ranking_method=RankingMethod.PROBABILITY
        )
        assert report.best().deployment == "good"

    def test_deployments_without_unexpected_rgs(self):
        report = self.make_report()
        safe = report.deployments_without_unexpected_rgs()
        assert {a.deployment for a in safe} == {"best", "mid"}

    def test_render_text_flags_unexpected(self):
        text = self.make_report().render_text()
        assert "unexpected risk group" in text
        assert "1. best" in text

    def test_to_json_round_trips(self):
        payload = json.loads(self.make_report().to_json())
        assert payload["title"] == "t"
        assert payload["deployments"][0]["deployment"] == "best"

    def test_summary_counts(self):
        summary = self.make_report().summary()
        assert "3 deployments" in summary
        assert "2 without" in summary
        assert "best" in summary
