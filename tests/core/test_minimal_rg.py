"""Unit tests for the exact minimal risk-group algorithm."""

import pytest

from repro import FaultGraph, GateType, minimal_risk_groups
from repro.core.minimal_rg import (
    CutSetExplosion,
    is_minimal_risk_group,
    is_risk_group,
    minimise_family,
    unexpected_risk_groups,
)
from repro.errors import AnalysisError


class TestMinimiseFamily:
    def test_removes_supersets(self):
        family = [
            frozenset({"a", "b"}),
            frozenset({"a"}),
            frozenset({"a", "b", "c"}),
            frozenset({"b", "c"}),
        ]
        assert set(minimise_family(family)) == {
            frozenset({"a"}),
            frozenset({"b", "c"}),
        }

    def test_deduplicates(self):
        family = [frozenset({"x"}), frozenset({"x"})]
        assert minimise_family(family) == [frozenset({"x"})]

    def test_idempotent(self):
        family = [frozenset({"a", "b"}), frozenset({"c"})]
        once = minimise_family(family)
        assert minimise_family(once) == once

    def test_empty(self):
        assert minimise_family([]) == []

    def test_result_is_antichain(self):
        family = [frozenset(s) for s in ("ab", "bc", "abc", "a", "cd", "d")]
        result = minimise_family(family)
        for left in result:
            for right in result:
                if left is not right:
                    assert not left <= right


class TestMinimalRiskGroups:
    def test_figure_4a(self, figure_4a):
        assert minimal_risk_groups(figure_4a) == [
            frozenset({"A2"}),
            frozenset({"A1", "A3"}),
        ]

    def test_deep_graph(self, deep_graph):
        groups = minimal_risk_groups(deep_graph)
        assert frozenset({"libc6"}) in groups
        assert frozenset({"core"}) not in groups  # core alone kills nets but
        # each server still needs its net AND... core fails both nets:
        # net1 = AND(tor1, core): core alone does NOT fail net1.
        assert frozenset({"tor1", "tor2"}) not in groups  # nets need core too
        assert frozenset({"core", "tor1", "tor2"}) in groups

    def test_single_basic_event_graph(self):
        g = FaultGraph()
        g.add_basic_event("a")
        g.set_top("a")
        assert minimal_risk_groups(g) == [frozenset({"a"})]

    def test_pure_or_chain(self):
        g = FaultGraph()
        for name in "abc":
            g.add_basic_event(name)
        g.add_gate("top", GateType.OR, list("abc"), top=True)
        assert minimal_risk_groups(g) == [
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"c"}),
        ]

    def test_k_of_n_gate(self):
        g = FaultGraph()
        for name in "abc":
            g.add_basic_event(name)
        g.add_gate("top", GateType.K_OF_N, list("abc"), k=2, top=True)
        groups = minimal_risk_groups(g)
        assert groups == [
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
        ]

    def test_shared_subtree_memoised_correctly(self):
        """A shared OR gate feeding two AND branches: {s} is minimal."""
        g = FaultGraph()
        g.add_basic_event("s")
        g.add_basic_event("x")
        g.add_basic_event("y")
        g.add_gate("shared", GateType.OR, ["s"])
        g.add_gate("b1", GateType.OR, ["shared", "x"])
        g.add_gate("b2", GateType.OR, ["shared", "y"])
        g.add_gate("top", GateType.AND, ["b1", "b2"], top=True)
        groups = minimal_risk_groups(g)
        assert frozenset({"s"}) in groups
        assert frozenset({"x", "y"}) in groups
        assert len(groups) == 2

    def test_results_sorted_by_size_then_members(self, figure_4a):
        groups = minimal_risk_groups(figure_4a)
        sizes = [len(g) for g in groups]
        assert sizes == sorted(sizes)

    def test_every_result_is_minimal(self, deep_graph):
        for group in minimal_risk_groups(deep_graph):
            assert is_minimal_risk_group(deep_graph, group)

    def test_max_order_truncation(self, deep_graph):
        truncated = minimal_risk_groups(deep_graph, max_order=1)
        assert truncated == [frozenset({"libc6"})]
        full = minimal_risk_groups(deep_graph)
        assert set(truncated) <= set(full)

    def test_max_groups_explosion(self):
        """A 2^n product blows past a tiny max_groups bound."""
        g = FaultGraph()
        branches = []
        for i in range(8):
            left = g.add_basic_event(f"l{i}")
            right = g.add_basic_event(f"r{i}")
            branches.append(g.add_gate(f"or{i}", GateType.OR, [left, right]))
        g.add_gate("top", GateType.AND, branches, top=True)
        with pytest.raises(CutSetExplosion):
            minimal_risk_groups(g, max_groups=10)
        # With a roomy bound it succeeds: 2^8 products.
        assert len(minimal_risk_groups(g)) == 256

    def test_explicit_subtop(self, deep_graph):
        groups = minimal_risk_groups(deep_graph, top="S1")
        assert frozenset({"libc6"}) in groups
        assert frozenset({"tor1", "core"}) in groups


class TestMethodFrontDoor:
    def test_routes_agree(self, deep_graph):
        reference = minimal_risk_groups(deep_graph, method="mocus")
        assert minimal_risk_groups(deep_graph, method="bdd") == reference
        assert minimal_risk_groups(deep_graph, method="auto") == reference

    def test_routes_agree_on_subtop(self, deep_graph):
        reference = minimal_risk_groups(deep_graph, top="S1", method="mocus")
        assert (
            minimal_risk_groups(deep_graph, top="S1", method="bdd")
            == reference
        )

    def test_auto_picks_mocus_for_pure_or(self):
        """Pure-OR graphs skip BDD compilation (unions are linear)."""
        from repro.core.minimal_rg import _pick_method

        g = FaultGraph()
        for name in "abc":
            g.add_basic_event(name)
        g.add_gate("top", GateType.OR, list("abc"), top=True)
        assert _pick_method(g, "top") == "mocus"

    def test_auto_picks_bdd_for_products(self, deep_graph):
        from repro.core.minimal_rg import _pick_method

        assert _pick_method(deep_graph, deep_graph.top) == "bdd"

    def test_unknown_method_rejected(self, figure_4a):
        with pytest.raises(AnalysisError, match="method"):
            minimal_risk_groups(figure_4a, method="magic")

    def test_bdd_route_honours_max_order(self, deep_graph):
        reference = minimal_risk_groups(
            deep_graph, max_order=2, method="mocus"
        )
        assert (
            minimal_risk_groups(deep_graph, max_order=2, method="bdd")
            == reference
        )

    def test_bdd_route_honours_max_groups(self):
        g = FaultGraph()
        branches = []
        for i in range(8):
            left = g.add_basic_event(f"l{i}")
            right = g.add_basic_event(f"r{i}")
            branches.append(g.add_gate(f"or{i}", GateType.OR, [left, right]))
        g.add_gate("top", GateType.AND, branches, top=True)
        with pytest.raises(CutSetExplosion):
            minimal_risk_groups(g, max_groups=10, method="bdd")

    def test_adversarial_ordering_raises_not_hangs(self):
        """AND of ORs with all left leaves declared before all right
        leaves: the default topological leaf ordering interleaves
        nothing, so the diagram itself is exponential.  The safety
        valve must bound compilation, not just the enumerated family."""
        n = 24
        g = FaultGraph()
        lefts = [g.add_basic_event(f"a{i}") for i in range(n)]
        rights = [g.add_basic_event(f"b{i}") for i in range(n)]
        branches = [
            g.add_gate(f"or{i}", GateType.OR, [lefts[i], rights[i]])
            for i in range(n)
        ]
        g.add_gate("top", GateType.AND, branches, top=True)
        with pytest.raises(CutSetExplosion):
            minimal_risk_groups(g, max_groups=1000)  # default auto -> bdd
        with pytest.raises(CutSetExplosion):
            minimal_risk_groups(g, max_groups=1000, method="mocus")


class TestKOfNExplosionGuard:
    """Regression: the K_OF_N branch must respect ``max_groups`` *during*
    accumulation — before the fix a hostile k-of-n graph ran the full
    exponential product sweep before the cap was ever consulted."""

    @staticmethod
    def hostile_graph(branches: int = 16, fanout: int = 2) -> FaultGraph:
        """k-of-n over OR gates: C(n,k) subsets, fanout^k products each."""
        g = FaultGraph()
        ors = []
        for i in range(branches):
            leaves = [
                g.add_basic_event(f"b{i}-{j}") for j in range(fanout)
            ]
            ors.append(g.add_gate(f"or{i}", GateType.OR, leaves))
        g.add_gate("top", GateType.K_OF_N, ors, k=branches // 2, top=True)
        return g

    def test_hostile_k_of_n_raises_not_hangs(self):
        g = self.hostile_graph()
        # 12870 subsets x 2^8 products = ~3.3M raw sets; the cap must
        # trip inside the very first subset's accumulation.
        with pytest.raises(CutSetExplosion):
            minimal_risk_groups(g, max_groups=50, method="mocus")

    def test_product_cap_trips_inside_and_accumulation(self):
        g = FaultGraph()
        branches = []
        for i in range(10):
            left = g.add_basic_event(f"l{i}")
            right = g.add_basic_event(f"r{i}")
            branches.append(g.add_gate(f"or{i}", GateType.OR, [left, right]))
        g.add_gate("top", GateType.AND, branches, top=True)
        with pytest.raises(CutSetExplosion, match="exceeded|product"):
            minimal_risk_groups(g, max_groups=100, method="mocus")

    def test_roomy_cap_still_succeeds(self):
        g = self.hostile_graph(branches=4, fanout=2)
        groups = minimal_risk_groups(g, max_groups=10_000, method="mocus")
        assert groups == minimal_risk_groups(g, method="bdd")
        assert all(is_minimal_risk_group(g, rg) for rg in groups)


class TestPredicates:
    def test_is_risk_group(self, figure_4a):
        assert is_risk_group(figure_4a, {"A2"})
        assert is_risk_group(figure_4a, {"A1", "A2", "A3"})
        assert not is_risk_group(figure_4a, {"A1"})

    def test_is_minimal_risk_group(self, figure_4a):
        assert is_minimal_risk_group(figure_4a, {"A2"})
        assert is_minimal_risk_group(figure_4a, {"A1", "A3"})
        assert not is_minimal_risk_group(figure_4a, {"A1", "A2"})
        assert not is_minimal_risk_group(figure_4a, {"A1"})


class TestUnexpectedRiskGroups:
    def test_filters_smaller_than_redundancy(self):
        groups = [frozenset({"x"}), frozenset({"a", "b"})]
        assert unexpected_risk_groups(groups, expected_size=2) == [
            frozenset({"x"})
        ]

    def test_none_when_all_big_enough(self):
        groups = [frozenset({"a", "b"})]
        assert unexpected_risk_groups(groups, expected_size=2) == []

    def test_invalid_expected_size(self):
        with pytest.raises(AnalysisError):
            unexpected_risk_groups([], expected_size=0)
