"""Unit tests for the fault-set level of detail."""

import pytest

from repro import FaultSets, minimal_risk_groups
from repro.errors import FaultGraphError


class TestFaultSets:
    def test_probabilities_flat_map(self):
        fs = FaultSets.from_mapping(
            {"E1": {"A1": 0.1, "A2": 0.2}, "E2": {"A2": 0.2, "A3": 0.3}}
        )
        assert fs.probabilities() == {"A1": 0.1, "A2": 0.2, "A3": 0.3}

    def test_conflicting_probabilities_rejected(self):
        fs = FaultSets.from_mapping(
            {"E1": {"A2": 0.2}, "E2": {"A2": 0.3}}
        )
        with pytest.raises(FaultGraphError, match="conflicting"):
            fs.probabilities()

    def test_empty_fault_set_rejected(self):
        with pytest.raises(FaultGraphError, match="empty"):
            FaultSets.from_mapping({"E1": {}})

    def test_invalid_probability_rejected(self):
        with pytest.raises(FaultGraphError):
            FaultSets.from_mapping({"E1": {"A1": 1.5}})

    def test_uniform_constructor(self):
        fs = FaultSets.uniform({"E1": ["a", "b"], "E2": ["c"]}, 0.1)
        assert fs.probabilities() == {"a": 0.1, "b": 0.1, "c": 0.1}

    def test_component_sets_downgrade(self):
        fs = FaultSets.from_mapping({"E1": {"a": 0.1}, "E2": {"b": 0.2}})
        sets = fs.component_sets()
        assert sets.sets == {"E1": frozenset({"a"}), "E2": frozenset({"b"})}

    def test_to_fault_graph_carries_weights(self, figure_4b):
        assert figure_4b.probability_of("A1") == 0.1
        assert figure_4b.probability_of("A2") == 0.2
        assert figure_4b.probability_of("A3") == 0.3

    def test_weighted_graph_same_structure_as_unweighted(
        self, figure_4a, figure_4b
    ):
        assert minimal_risk_groups(figure_4a) == minimal_risk_groups(figure_4b)

    def test_required_passes_through(self):
        fs = FaultSets.from_mapping(
            {"E1": {"a": 0.1}, "E2": {"b": 0.1}, "E3": {"c": 0.1}},
            required=2,
        )
        graph = fs.to_fault_graph()
        assert graph.threshold(graph.top) == 2
