"""Unit tests for event and gate primitives."""

import pytest

from repro.core.events import (
    Event,
    GateType,
    redundancy_threshold,
    validate_probability,
)
from repro.errors import FaultGraphError


class TestRedundancyThreshold:
    def test_plain_replication_fails_only_when_all_fail(self):
        assert redundancy_threshold(1, 3) == 3

    def test_two_of_three_tolerates_one_failure(self):
        assert redundancy_threshold(2, 3) == 2

    def test_no_slack(self):
        assert redundancy_threshold(3, 3) == 1

    def test_single_member(self):
        assert redundancy_threshold(1, 1) == 1

    @pytest.mark.parametrize("required,total", [(0, 3), (4, 3), (-1, 2)])
    def test_invalid_redundancy_rejected(self, required, total):
        with pytest.raises(FaultGraphError):
            redundancy_threshold(required, total)


class TestValidateProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 0.224])
    def test_valid_values_pass_through(self, value):
        assert validate_probability(value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan"), "abc", None])
    def test_invalid_values_rejected(self, value):
        with pytest.raises(FaultGraphError):
            validate_probability(value)

    def test_error_mentions_what(self):
        with pytest.raises(FaultGraphError, match="weight of X"):
            validate_probability(2.0, what="weight of X")


class TestEvent:
    def test_basic_event(self):
        event = Event("A1")
        assert event.is_basic
        assert event.probability is None

    def test_gate_event_is_not_basic(self):
        assert not Event("g", gate=GateType.OR).is_basic

    def test_empty_name_rejected(self):
        with pytest.raises(FaultGraphError):
            Event("")

    def test_k_of_n_requires_threshold(self):
        with pytest.raises(FaultGraphError):
            Event("g", gate=GateType.K_OF_N)

    def test_threshold_only_for_k_of_n(self):
        with pytest.raises(FaultGraphError):
            Event("g", gate=GateType.AND, k=2)

    def test_invalid_gate_type(self):
        with pytest.raises(FaultGraphError):
            Event("g", gate="and")

    def test_probability_validated(self):
        with pytest.raises(FaultGraphError):
            Event("A", probability=1.5)

    def test_or_threshold_is_one(self):
        assert Event("g", gate=GateType.OR).threshold(5) == 1

    def test_and_threshold_is_fan_in(self):
        assert Event("g", gate=GateType.AND).threshold(5) == 5

    def test_k_of_n_threshold(self):
        assert Event("g", gate=GateType.K_OF_N, k=3).threshold(5) == 3

    def test_k_of_n_threshold_exceeding_fan_in_rejected(self):
        event = Event("g", gate=GateType.K_OF_N, k=6)
        with pytest.raises(FaultGraphError):
            event.threshold(5)

    def test_basic_event_has_no_threshold(self):
        with pytest.raises(FaultGraphError):
            Event("A").threshold(1)
