"""Unit tests for RG ranking and independence scores (§4.1.3–§4.1.4)."""

import pytest

from repro import (
    RankingMethod,
    independence_score,
    rank_by_probability,
    rank_by_size,
)
from repro.core.ranking import rank_risk_groups
from repro.errors import AnalysisError

CUTS = [frozenset({"A2"}), frozenset({"A1", "A3"})]
PROBS = {"A1": 0.1, "A2": 0.2, "A3": 0.3}


class TestSizeRanking:
    def test_smallest_first(self):
        ranking = rank_by_size(CUTS)
        assert ranking[0].events == frozenset({"A2"})
        assert ranking[0].rank == 1
        assert ranking[1].events == frozenset({"A1", "A3"})

    def test_lexicographic_tie_break(self):
        ranking = rank_by_size([frozenset({"b"}), frozenset({"a"})])
        assert [sorted(e.events)[0] for e in ranking] == ["a", "b"]

    def test_no_probabilities_attached(self):
        entry = rank_by_size(CUTS)[0]
        assert entry.probability is None
        assert entry.importance is None

    def test_describe_mentions_size(self):
        assert "size=1" in rank_by_size(CUTS)[0].describe()


class TestProbabilityRanking:
    def test_paper_example(self):
        ranking = rank_by_probability(CUTS, PROBS)
        assert ranking[0].events == frozenset({"A2"})
        assert ranking[0].importance == pytest.approx(0.8929, abs=1e-4)
        assert ranking[1].importance == pytest.approx(0.1339, abs=1e-4)

    def test_precomputed_top_probability(self):
        ranking = rank_by_probability(CUTS, PROBS, top_probability=0.224)
        assert ranking[0].probability == pytest.approx(0.2)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            rank_by_probability([], PROBS)

    def test_higher_probability_ranks_first(self):
        probs = {"x": 0.9, "y": 0.01, "z": 0.01}
        cuts = [frozenset({"x"}), frozenset({"y", "z"})]
        ranking = rank_by_probability(cuts, probs)
        assert ranking[0].events == frozenset({"x"})


class TestDispatch:
    def test_size_dispatch(self):
        assert rank_risk_groups(CUTS, RankingMethod.SIZE) == rank_by_size(CUTS)

    def test_probability_dispatch_requires_probs(self):
        with pytest.raises(AnalysisError, match="needs per-event"):
            rank_risk_groups(CUTS, RankingMethod.PROBABILITY)


class TestIndependenceScore:
    def test_size_score_sums_sizes(self):
        ranking = rank_by_size(CUTS)
        assert independence_score(ranking, RankingMethod.SIZE) == 3.0

    def test_size_score_top_n(self):
        ranking = rank_by_size(CUTS)
        assert independence_score(ranking, RankingMethod.SIZE, top_n=1) == 1.0

    def test_probability_score_sums_importances(self):
        ranking = rank_by_probability(CUTS, PROBS)
        score = independence_score(ranking, RankingMethod.PROBABILITY)
        assert score == pytest.approx(0.8929 + 0.1339, abs=1e-3)

    def test_probability_score_requires_importances(self):
        ranking = rank_by_size(CUTS)
        with pytest.raises(AnalysisError, match="lack importances"):
            independence_score(ranking, RankingMethod.PROBABILITY)

    def test_direction_flags(self):
        assert RankingMethod.SIZE.higher_score_is_more_independent
        assert not RankingMethod.PROBABILITY.higher_score_is_more_independent

    def test_empty_ranking_rejected(self):
        with pytest.raises(AnalysisError):
            independence_score([], RankingMethod.SIZE)

    def test_invalid_top_n(self):
        ranking = rank_by_size(CUTS)
        with pytest.raises(AnalysisError):
            independence_score(ranking, RankingMethod.SIZE, top_n=0)
