"""Unit tests for component importance measures."""

import pytest

from repro import FaultGraph, GateType, minimal_risk_groups
from repro.core.importance import (
    birnbaum_importance,
    component_importance_ranking,
    fussell_vesely_importance,
)
from repro.errors import AnalysisError


class TestBirnbaum:
    def test_series_system(self):
        """Pure OR: I_B(c) = prod over others of (1 - p_o)."""
        g = FaultGraph()
        g.add_basic_event("a", probability=0.1)
        g.add_basic_event("b", probability=0.2)
        g.add_gate("top", GateType.OR, ["a", "b"], top=True)
        result = birnbaum_importance(g)
        assert result["a"] == pytest.approx(0.8)   # 1 - p_b
        assert result["b"] == pytest.approx(0.9)   # 1 - p_a

    def test_parallel_system(self):
        """Pure AND: I_B(c) = product of the other probabilities."""
        g = FaultGraph()
        g.add_basic_event("a", probability=0.1)
        g.add_basic_event("b", probability=0.2)
        g.add_gate("top", GateType.AND, ["a", "b"], top=True)
        result = birnbaum_importance(g)
        assert result["a"] == pytest.approx(0.2)
        assert result["b"] == pytest.approx(0.1)

    def test_figure_4b(self, figure_4b):
        result = birnbaum_importance(figure_4b)
        # A2 failed => T certain; A2 ok => T needs A1 and A3 (0.03):
        assert result["A2"] == pytest.approx(1.0 - 0.03)
        # A1 failed => T = Pr(A2 or A3) = 0.44; A1 ok => T = Pr(A2) = 0.2:
        assert result["A1"] == pytest.approx(0.44 - 0.2)
        # The shared component dominates.
        assert result["A2"] > result["A1"] > 0
        assert result["A2"] > result["A3"] > 0

    def test_irrelevant_component_scores_zero(self):
        g = FaultGraph()
        g.add_basic_event("a", probability=0.5)
        g.add_basic_event("dead", probability=0.5)
        g.add_gate("sub", GateType.AND, ["a", "dead"])
        g.add_gate("top", GateType.OR, ["a", "sub"], top=True)
        # "dead" only matters through sub = a AND dead, absorbed by a.
        assert birnbaum_importance(g)["dead"] == pytest.approx(0.0)


class TestFussellVesely:
    def test_figure_4b(self, figure_4b, figure_4b_probs):
        groups = minimal_risk_groups(figure_4b)
        result = fussell_vesely_importance(groups, figure_4b_probs)
        # A2's only cut is {A2}: I_FV = 0.2 / 0.224.
        assert result["A2"] == pytest.approx(0.2 / 0.224)
        # A1 flows through {A1, A3}: 0.03 / 0.224.
        assert result["A1"] == pytest.approx(0.03 / 0.224)

    def test_needs_groups(self, figure_4b_probs):
        with pytest.raises(AnalysisError):
            fussell_vesely_importance([], figure_4b_probs)

    def test_zero_top_probability_yields_zero_importance(self):
        """Pr(T) == 0 must produce defined values, not a ZeroDivisionError."""
        groups = [frozenset({"a"}), frozenset({"b", "c"})]
        result = fussell_vesely_importance(
            groups, {"a": 0.0, "b": 0.0, "c": 0.0}
        )
        assert result == {"a": 0.0, "b": 0.0, "c": 0.0}

    def test_explicit_zero_top_probability(self, figure_4b):
        groups = minimal_risk_groups(figure_4b)
        result = fussell_vesely_importance(
            groups, {"A1": 0.1, "A2": 0.2, "A3": 0.3}, top_probability=0.0
        )
        assert set(result.values()) == {0.0}


class TestRanking:
    def test_sorted_by_birnbaum(self, figure_4b):
        ranking = component_importance_ranking(figure_4b)
        assert ranking[0].component == "A2"
        values = [e.birnbaum for e in ranking]
        assert values == sorted(values, reverse=True)

    def test_criticality_consistency(self, figure_4b):
        """criticality = birnbaum * p / Pr(T)."""
        ranking = component_importance_ranking(figure_4b)
        for entry in ranking:
            assert entry.criticality == pytest.approx(
                entry.birnbaum * entry.probability / 0.224, rel=1e-9
            )

    def test_describe(self, figure_4b):
        text = component_importance_ranking(figure_4b)[0].describe()
        assert "A2" in text and "I_B" in text

    def test_unweighted_graph_rejected(self, figure_4a):
        with pytest.raises(Exception):
            component_importance_ranking(figure_4a)

    def test_all_zero_weights_rank_without_dividing(self, figure_4b):
        """Criticality scaling with Pr(T) == 0 must come back 0.0."""
        zeroed = figure_4b.map_probabilities(lambda e: 0.0)
        ranking = component_importance_ranking(zeroed)
        assert len(ranking) == 3
        for entry in ranking:
            assert entry.criticality == 0.0
            assert entry.fussell_vesely == 0.0
            # Birnbaum stays defined: with everything else working, A2
            # failing still fails the system.
        assert ranking[0].component == "A2"
        assert ranking[0].birnbaum == pytest.approx(1.0)
