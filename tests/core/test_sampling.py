"""Unit tests for the failure sampling algorithm."""

import pytest

from repro import FailureSampler, minimal_risk_groups
from repro.errors import AnalysisError


class TestFailureSampler:
    def test_finds_all_minimal_rgs_on_small_graph(self, figure_4a):
        sampler = FailureSampler(figure_4a, seed=0)
        result = sampler.run(3000)
        reference = minimal_risk_groups(figure_4a)
        assert result.detection_rate(reference) == 1.0
        assert set(result.risk_groups) == set(reference)

    def test_sampled_groups_are_risk_groups(self, deep_graph):
        result = FailureSampler(deep_graph, seed=1).run(2000)
        assert result.risk_groups
        for group in result.risk_groups:
            assert deep_graph.evaluate(group)

    def test_minimised_groups_are_minimal(self, deep_graph):
        result = FailureSampler(deep_graph, seed=2, minimise=True).run(2000)
        for group in result.risk_groups:
            for event in group:
                assert not deep_graph.evaluate(set(group) - {event})

    def test_deterministic_for_fixed_seed(self, figure_4a):
        first = FailureSampler(figure_4a, seed=42).run(500)
        second = FailureSampler(figure_4a, seed=42).run(500)
        assert first.risk_groups == second.risk_groups
        assert first.top_failures == second.top_failures

    def test_raw_mode_collects_failing_sets(self, figure_4a):
        result = FailureSampler(figure_4a, seed=3, minimise=False).run(500)
        assert not result.minimised
        # Raw failing sets are risk groups but possibly non-minimal.
        for group in result.risk_groups:
            assert figure_4a.evaluate(group)

    def test_raw_mode_detects_less_or_equal(self, deep_graph):
        reference = minimal_risk_groups(deep_graph)
        raw = FailureSampler(deep_graph, seed=4, minimise=False).run(1000)
        refined = FailureSampler(deep_graph, seed=4, minimise=True).run(1000)
        assert raw.detection_rate(reference) <= refined.detection_rate(
            reference
        )

    def test_probability_estimate_matches_weighted_sampling(self, figure_4b):
        sampler = FailureSampler(figure_4b, use_weights=True, seed=5)
        result = sampler.run(40_000)
        # True Pr(T) = 0.224 (paper); sampling should land close.
        assert result.top_probability_estimate == pytest.approx(0.224, abs=0.02)

    def test_use_weights_requires_weighted_graph(self, figure_4a):
        with pytest.raises(Exception):
            FailureSampler(figure_4a, use_weights=True)

    def test_more_rounds_find_no_fewer_groups(self, deep_graph):
        few = FailureSampler(deep_graph, seed=6, sample_probability=0.15).run(50)
        many = FailureSampler(deep_graph, seed=6, sample_probability=0.15).run(
            5000
        )
        reference = minimal_risk_groups(deep_graph)
        assert many.detection_rate(reference) >= few.detection_rate(reference)

    def test_invalid_parameters(self, figure_4a):
        with pytest.raises(AnalysisError):
            FailureSampler(figure_4a, sample_probability=0.0)
        with pytest.raises(AnalysisError):
            FailureSampler(figure_4a, batch_size=0)
        with pytest.raises(AnalysisError):
            FailureSampler(figure_4a).run(0)

    def test_detection_rate_needs_reference(self, figure_4a):
        result = FailureSampler(figure_4a, seed=7).run(100)
        with pytest.raises(AnalysisError):
            result.detection_rate([])

    def test_result_bookkeeping(self, figure_4a):
        rounds = 800
        result = FailureSampler(figure_4a, seed=8).run(rounds)
        assert result.rounds == rounds
        assert 0 <= result.top_failures <= rounds
        assert result.top_probability_estimate == result.top_failures / rounds
        assert result.elapsed_seconds > 0
        assert result.unique_failure_sets <= result.top_failures
