"""Property-based tests for the core algorithms (hypothesis).

Invariants checked on randomly generated fault graphs:

* every reported minimal RG is a risk group and is minimal;
* the sampler only reports risk groups, and (minimised) only minimal ones;
* fault graphs are monotone: adding failures never un-fails the top;
* absorption (minimise_family) yields an antichain covering the input;
* exact inclusion-exclusion matches Monte-Carlo estimation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import FailureSampler, FaultGraph, GateType, minimal_risk_groups
from repro.core.compile import CompiledGraph
from repro.core.minimal_rg import is_minimal_risk_group, minimise_family
from repro.core.probability import union_probability


@st.composite
def fault_graphs(draw) -> FaultGraph:
    """Random layered DAGs with 3-8 leaves and 2-6 gates."""
    n_leaves = draw(st.integers(3, 8))
    g = FaultGraph("random")
    nodes = []
    for i in range(n_leaves):
        nodes.append(g.add_basic_event(f"L{i}"))
    n_gates = draw(st.integers(2, 6))
    for i in range(n_gates):
        fan_in = draw(st.integers(1, min(4, len(nodes))))
        children = draw(
            st.lists(
                st.sampled_from(nodes),
                min_size=fan_in,
                max_size=fan_in,
                unique=True,
            )
        )
        gate = draw(st.sampled_from([GateType.AND, GateType.OR, GateType.K_OF_N]))
        k = None
        if gate is GateType.K_OF_N:
            k = draw(st.integers(1, len(children)))
        nodes.append(g.add_gate(f"G{i}", gate, children, k=k))
    # Root everything unreachable into one final OR gate on top of the
    # last gate plus any orphans.
    reachable = g.descendants(nodes[-1]) | {nodes[-1]}
    orphans = [n for n in g.events() if n not in reachable and not g.parents(n)]
    if orphans:
        g.add_gate("ROOT", GateType.OR, [nodes[-1], *orphans], top=True)
    else:
        g.set_top(nodes[-1])
    g.validate()
    return g


@settings(max_examples=60, deadline=None)
@given(fault_graphs())
def test_minimal_rgs_are_minimal_risk_groups(graph):
    groups = minimal_risk_groups(graph)
    for group in groups:
        assert is_minimal_risk_group(graph, group)


@settings(max_examples=60, deadline=None)
@given(fault_graphs())
def test_minimal_rg_family_is_antichain(graph):
    groups = minimal_risk_groups(graph)
    for a in groups:
        for b in groups:
            if a is not b:
                assert not a <= b


@settings(max_examples=30, deadline=None)
@given(fault_graphs(), st.integers(0, 2**31 - 1))
def test_sampler_reports_only_minimal_risk_groups(graph, seed):
    result = FailureSampler(graph, seed=seed, batch_size=256).run(400)
    for group in result.risk_groups:
        assert graph.evaluate(group)
        assert is_minimal_risk_group(graph, group)


@settings(max_examples=30, deadline=None)
@given(fault_graphs(), st.integers(0, 2**31 - 1))
def test_sampled_groups_subset_of_true_minimal_family(graph, seed):
    true_groups = set(minimal_risk_groups(graph))
    result = FailureSampler(graph, seed=seed, batch_size=256).run(400)
    assert set(result.risk_groups) <= true_groups


@settings(max_examples=40, deadline=None)
@given(fault_graphs(), st.data())
def test_fault_graphs_are_monotone(graph, data):
    """Failing a superset of events can only keep/raise the top value."""
    leaves = graph.basic_events()
    subset = data.draw(st.sets(st.sampled_from(leaves), max_size=len(leaves)))
    extra = data.draw(st.sets(st.sampled_from(leaves), max_size=len(leaves)))
    small = graph.evaluate(subset)
    big = graph.evaluate(set(subset) | set(extra))
    assert big or not small


@settings(max_examples=40, deadline=None)
@given(fault_graphs())
def test_compiled_evaluator_matches_reference(graph):
    compiled = CompiledGraph(graph)
    rng = np.random.default_rng(0)
    failures = rng.random((16, compiled.n_basic)) < 0.4
    top = compiled.evaluate_batch(failures)
    for row in range(16):
        failed = {
            compiled.basic_names[i] for i in np.flatnonzero(failures[row])
        }
        assert top[row] == graph.evaluate(failed)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.sets(st.sampled_from("abcdefg"), min_size=1, max_size=4).map(
            frozenset
        ),
        min_size=1,
        max_size=12,
    )
)
def test_minimise_family_antichain_and_coverage(family):
    result = minimise_family(family)
    # antichain
    for a in result:
        for b in result:
            if a is not b:
                assert not a <= b
    # coverage: every input set contains some kept set
    for original in family:
        assert any(kept <= original for kept in result)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.sets(st.sampled_from("abcde"), min_size=1, max_size=3).map(
            frozenset
        ),
        min_size=1,
        max_size=6,
        unique=True,
    ),
    st.dictionaries(
        st.sampled_from("abcde"),
        st.floats(0.05, 0.95),
        min_size=5,
        max_size=5,
    ),
)
def test_inclusion_exclusion_matches_monte_carlo(cuts, probs):
    exact = union_probability(cuts, probs, method="exact")
    estimate = union_probability(
        cuts, probs, method="monte-carlo", mc_rounds=60_000, seed=3
    )
    assert abs(exact - estimate) < 0.02
