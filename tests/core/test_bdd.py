"""Unit + property tests for the BDD engine."""

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro import FaultGraph, GateType, minimal_risk_groups
from repro.core.bdd import BDD, ONE, ZERO, compile_graph
from repro.core.minimal_rg import CutSetExplosion
from repro.core.probability import top_event_probability
from repro.errors import AnalysisError


class TestBDDBasics:
    def test_literal_round_trip(self):
        bdd = BDD(["a", "b"])
        bdd.root = bdd.literal("a")
        assert bdd.evaluate({"a"})
        assert not bdd.evaluate({"b"})

    def test_reduction_rule(self):
        bdd = BDD(["a"])
        assert bdd.make(0, ZERO, ZERO) == ZERO  # redundant test collapses

    def test_hash_consing(self):
        bdd = BDD(["a"])
        assert bdd.literal("a") == bdd.literal("a")

    def test_apply_or(self):
        bdd = BDD(["a", "b"])
        bdd.root = bdd.apply("or", bdd.literal("a"), bdd.literal("b"))
        assert bdd.evaluate({"a"})
        assert bdd.evaluate({"b"})
        assert not bdd.evaluate(set())

    def test_apply_and(self):
        bdd = BDD(["a", "b"])
        bdd.root = bdd.apply("and", bdd.literal("a"), bdd.literal("b"))
        assert bdd.evaluate({"a", "b"})
        assert not bdd.evaluate({"a"})

    def test_at_least(self):
        bdd = BDD(["a", "b", "c"])
        ops = [bdd.literal(x) for x in "abc"]
        bdd.root = bdd.at_least(2, ops)
        assert bdd.evaluate({"a", "b"})
        assert bdd.evaluate({"a", "c"})
        assert not bdd.evaluate({"c"})

    def test_unknown_variable(self):
        with pytest.raises(AnalysisError):
            BDD(["a"]).literal("z")

    def test_unknown_operation(self):
        bdd = BDD(["a", "b"])
        with pytest.raises(AnalysisError):
            bdd.apply("xor", bdd.literal("a"), bdd.literal("b"))


class TestCompileGraph:
    def test_agrees_with_graph_evaluation(self, deep_graph):
        bdd = compile_graph(deep_graph)
        leaves = deep_graph.basic_events()
        for r in range(len(leaves) + 1):
            for failed in combinations(leaves, r):
                assert bdd.evaluate(set(failed)) == deep_graph.evaluate(
                    failed
                ), failed

    def test_probability_matches_cut_set_route(self, figure_4b):
        bdd = compile_graph(figure_4b)
        probs = {"A1": 0.1, "A2": 0.2, "A3": 0.3}
        # Exact on the shared-A2 DAG, where tree_probability refuses.
        assert bdd.probability(probs) == pytest.approx(0.224)

    def test_minimal_cut_sets_match_mocus(self, deep_graph):
        bdd = compile_graph(deep_graph)
        assert bdd.minimal_cut_sets() == minimal_risk_groups(deep_graph)

    def test_model_count_brute_force(self, deep_graph):
        bdd = compile_graph(deep_graph)
        leaves = deep_graph.basic_events()
        expected = 0
        for r in range(len(leaves) + 1):
            for failed in combinations(leaves, r):
                if deep_graph.evaluate(failed):
                    expected += 1
        assert bdd.count_failure_states() == expected

    def test_custom_ordering(self, figure_4a):
        bdd = compile_graph(figure_4a, ordering=["A3", "A2", "A1"])
        assert bdd.evaluate({"A2"})
        assert bdd.minimal_cut_sets() == minimal_risk_groups(figure_4a)

    def test_bad_ordering_rejected(self, figure_4a):
        with pytest.raises(AnalysisError, match="exactly"):
            compile_graph(figure_4a, ordering=["A1"])

    def test_missing_probability(self, figure_4a):
        bdd = compile_graph(figure_4a)
        with pytest.raises(AnalysisError, match="no failure probability"):
            bdd.probability({"A1": 0.5})

    def test_k_of_n_graph(self):
        g = FaultGraph()
        for name in "abcd":
            g.add_basic_event(name, probability=0.5)
        g.add_gate("top", GateType.K_OF_N, list("abcd"), k=3, top=True)
        bdd = compile_graph(g)
        # P(X >= 3), X ~ Binomial(4, 0.5) = (4 + 1)/16
        assert bdd.probability({n: 0.5 for n in "abcd"}) == pytest.approx(
            5 / 16
        )
        assert bdd.count_failure_states() == 5

    def test_size_reported(self, deep_graph):
        assert compile_graph(deep_graph).size() >= 1


class TestMinimalSolutions:
    """Rauzy's minsol/without pair behind ``minimal_cut_sets``."""

    def test_without_terminals(self):
        bdd = BDD(["a", "b"])
        a = bdd.literal("a")
        assert bdd.without(ZERO, a) == ZERO
        assert bdd.without(a, ZERO) == a
        assert bdd.without(a, ONE) == ZERO  # {∅} absorbs everything
        assert bdd.without(ONE, a) == ONE   # ∅ has no strict subset

    def test_without_drops_supersets(self):
        bdd = BDD(["a", "b"])
        a = bdd.literal("a")
        ab = bdd.apply("and", a, bdd.literal("b"))
        # {a,b} is a superset of {a}: nothing survives.
        assert bdd.without(ab, a) == ZERO
        # {a} is not a superset of {a,b}.
        assert bdd.without(a, ab) == a

    def test_minsol_of_or_is_identity(self):
        bdd = BDD(["a", "b"])
        bdd.root = bdd.apply("or", bdd.literal("a"), bdd.literal("b"))
        assert bdd.minimal_solutions() == bdd.root

    def test_minsol_strips_absorbed_paths(self, figure_4b):
        # (A1 ∨ A2) ∧ (A2 ∨ A3): the {A1,A2}/{A2,A3} paths must go.
        bdd = compile_graph(figure_4b)
        assert bdd.minimal_cut_sets() == [
            frozenset({"A2"}),
            frozenset({"A1", "A3"}),
        ]

    def test_minsol_is_cached(self, deep_graph):
        bdd = compile_graph(deep_graph)
        assert bdd.minimal_solutions() == bdd.minimal_solutions()

    def test_max_order_truncation_matches_mocus(self, deep_graph):
        bdd = compile_graph(deep_graph)
        for order in (1, 2, 3):
            assert bdd.minimal_cut_sets(max_order=order) == (
                minimal_risk_groups(deep_graph, max_order=order, method="mocus")
            )

    def test_max_groups_cap(self, deep_graph):
        bdd = compile_graph(deep_graph)
        full = bdd.minimal_cut_sets()
        assert bdd.minimal_cut_sets(max_groups=len(full)) == full
        with pytest.raises(CutSetExplosion):
            bdd.minimal_cut_sets(max_groups=len(full) - 1)


@st.composite
def small_graphs(draw) -> FaultGraph:
    n_leaves = draw(st.integers(2, 6))
    g = FaultGraph("prop")
    nodes = [g.add_basic_event(f"L{i}") for i in range(n_leaves)]
    for i in range(draw(st.integers(1, 4))):
        fan = draw(st.integers(1, min(3, len(nodes))))
        children = draw(
            st.lists(
                st.sampled_from(nodes), min_size=fan, max_size=fan, unique=True
            )
        )
        gate = draw(st.sampled_from([GateType.AND, GateType.OR]))
        nodes.append(g.add_gate(f"G{i}", gate, children))
    reachable = g.descendants(nodes[-1]) | {nodes[-1]}
    orphans = [n for n in g.events() if n not in reachable and not g.parents(n)]
    if orphans:
        g.add_gate("ROOT", GateType.OR, [nodes[-1], *orphans], top=True)
    else:
        g.set_top(nodes[-1])
    return g


@settings(max_examples=50, deadline=None)
@given(small_graphs())
def test_bdd_equals_graph_on_all_assignments(graph):
    bdd = compile_graph(graph)
    leaves = graph.basic_events()
    for r in range(len(leaves) + 1):
        for failed in combinations(leaves, r):
            assert bdd.evaluate(set(failed)) == graph.evaluate(failed)


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_bdd_cut_sets_equal_mocus(graph):
    bdd = compile_graph(graph)
    assert bdd.minimal_cut_sets() == minimal_risk_groups(graph)


@settings(max_examples=30, deadline=None)
@given(small_graphs(), st.floats(0.05, 0.95))
def test_bdd_probability_equals_inclusion_exclusion(graph, p):
    groups = minimal_risk_groups(graph)
    probs = {leaf: p for leaf in graph.basic_events()}
    bdd = compile_graph(graph)
    assert bdd.probability(probs) == pytest.approx(
        top_event_probability(groups, probs, method="exact")
    )
