"""Integration tests for the SIA auditing pipeline."""

import pytest

from repro import (
    AuditSpec,
    DetailLevel,
    RGAlgorithm,
    RankingMethod,
    SIAAuditor,
)
from repro.depdb import (
    DepDB,
    HardwareDependency,
    NetworkDependency,
    SoftwareDependency,
)
from repro.errors import SpecificationError


@pytest.fixture
def depdb() -> DepDB:
    db = DepDB()
    for server in ("S1", "S2"):
        db.add(NetworkDependency(server, "Internet", ("ToR1", "Core1")))
        db.add(NetworkDependency(server, "Internet", ("ToR1", "Core2")))
        db.add(HardwareDependency(server, "Disk", f"{server}-disk"))
        db.add(SoftwareDependency(f"Riak-{server}", server, ("libc6",)))
    db.add(NetworkDependency("S3", "Internet", ("ToR2", "Core1")))
    db.add(NetworkDependency("S3", "Internet", ("ToR2", "Core2")))
    db.add(HardwareDependency("S3", "Disk", "S3-disk"))
    db.add(SoftwareDependency("Riak-S3", "S3", ("libc6",)))
    return db


class TestAuditDeployment:
    def test_minimal_algorithm_finds_shared_tor(self, depdb):
        auditor = SIAAuditor(depdb)
        audit = auditor.audit_deployment(
            AuditSpec(deployment="S1 & S2", servers=("S1", "S2"))
        )
        events = [e.events for e in audit.ranking]
        assert frozenset({"device:ToR1"}) in events
        assert frozenset({"pkg:libc6"}) in events
        assert audit.has_unexpected_risk_groups

    def test_disjoint_tors_have_no_singleton_devices(self, depdb):
        auditor = SIAAuditor(depdb)
        audit = auditor.audit_deployment(
            AuditSpec(deployment="S1 & S3", servers=("S1", "S3"))
        )
        singletons = [e for e in audit.ranking if e.size == 1]
        # libc6 is still shared; the ToRs are not.
        assert [e.events for e in singletons] == [frozenset({"pkg:libc6"})]

    def test_sampling_algorithm_agrees_on_small_graph(self, depdb):
        auditor = SIAAuditor(depdb)
        spec = AuditSpec(
            deployment="S1 & S2",
            servers=("S1", "S2"),
            algorithm=RGAlgorithm.SAMPLING,
            sampling_rounds=4000,
            seed=0,
        )
        sampled = auditor.audit_deployment(spec)
        exact = auditor.audit_deployment(
            AuditSpec(deployment="S1 & S2", servers=("S1", "S2"))
        )
        assert {e.events for e in sampled.ranking} == {
            e.events for e in exact.ranking
        }

    def test_component_set_level_flattens(self, depdb):
        auditor = SIAAuditor(depdb)
        audit = auditor.audit_deployment(
            AuditSpec(
                deployment="S1 & S3",
                servers=("S1", "S3"),
                level=DetailLevel.COMPONENT_SET,
            )
        )
        # Flattening destroys path redundancy: Core1 is now shared and
        # a single point (OR semantics inside each source).
        events = {e.events for e in audit.ranking}
        assert frozenset({"device:Core1"}) in events

    def test_probability_ranking_needs_weights(self, depdb):
        auditor = SIAAuditor(depdb)  # no weigher
        spec = AuditSpec(
            deployment="S1 & S2",
            servers=("S1", "S2"),
            ranking=RankingMethod.PROBABILITY,
        )
        with pytest.raises(Exception):
            auditor.audit_deployment(spec)

    def test_probability_ranking_with_weigher(self, depdb):
        auditor = SIAAuditor(depdb, weigher=lambda kind, ident: 0.1)
        spec = AuditSpec(
            deployment="S1 & S2",
            servers=("S1", "S2"),
            ranking=RankingMethod.PROBABILITY,
        )
        audit = auditor.audit_deployment(spec)
        assert audit.failure_probability is not None
        assert audit.ranking[0].importance is not None
        # importances are sorted descending
        importances = [e.importance for e in audit.ranking]
        assert importances == sorted(importances, reverse=True)

    def test_graph_stats_recorded(self, depdb):
        audit = SIAAuditor(depdb).audit_deployment(
            AuditSpec(deployment="d", servers=("S1",))
        )
        assert audit.graph_stats["events"] > 0


class TestAuditMany:
    def test_compare_combinations(self, depdb):
        auditor = SIAAuditor(depdb, weigher=lambda k, i: 0.1)
        base = AuditSpec(deployment="probe", servers=("S1", "S2"), top_n=3)
        report = auditor.compare_combinations(base, ["S1", "S2", "S3"], ways=2)
        assert len(report.audits) == 3
        names = {a.deployment for a in report.audits}
        assert names == {"S1 & S2", "S1 & S3", "S2 & S3"}
        # S1&S2 share ToR1 -> worst
        assert report.ranked_deployments()[-1].deployment == "S1 & S2"

    def test_mixed_ranking_methods_rejected(self, depdb):
        auditor = SIAAuditor(depdb, weigher=lambda k, i: 0.1)
        specs = [
            AuditSpec(deployment="a", servers=("S1",)),
            AuditSpec(
                deployment="b",
                servers=("S2",),
                ranking=RankingMethod.PROBABILITY,
            ),
        ]
        with pytest.raises(SpecificationError, match="share a ranking"):
            auditor.audit(specs)

    def test_empty_specs_rejected(self, depdb):
        with pytest.raises(SpecificationError):
            SIAAuditor(depdb).audit([])

    def test_invalid_ways(self, depdb):
        base = AuditSpec(deployment="probe", servers=("S1",))
        with pytest.raises(SpecificationError):
            SIAAuditor(depdb).compare_combinations(base, ["S1"], ways=5)
