"""Unit tests for audit specifications."""

import pytest

from repro import AuditSpec, DetailLevel, RGAlgorithm, RankingMethod
from repro.errors import SpecificationError


class TestValidation:
    def test_minimal_valid_spec(self):
        spec = AuditSpec(deployment="d", servers=("a", "b"))
        assert spec.redundancy == 2
        assert spec.level is DetailLevel.FAULT_GRAPH
        assert spec.algorithm is RGAlgorithm.MINIMAL

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deployment": "", "servers": ("a",)},
            {"deployment": "d", "servers": ()},
            {"deployment": "d", "servers": ("a", "a")},
            {"deployment": "d", "servers": ("a",), "required": 2},
            {"deployment": "d", "servers": ("a",), "required": 0},
            {"deployment": "d", "servers": ("a",), "sampling_rounds": 0},
            {"deployment": "d", "servers": ("a",), "sampling_probability": 0.0},
            {"deployment": "d", "servers": ("a",), "sampling_probability": 1.0},
            {"deployment": "d", "servers": ("a",), "top_n": 0},
            {"deployment": "d", "servers": ("a",), "max_order": 0},
            {"deployment": "d", "servers": ("a",), "level": "fault-graph"},
            {"deployment": "d", "servers": ("a",), "algorithm": "minimal"},
            {"deployment": "d", "servers": ("a",), "ranking": "size"},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(SpecificationError):
            AuditSpec(**kwargs)

    def test_servers_normalised_to_tuple(self):
        spec = AuditSpec(deployment="d", servers=["a", "b"])
        assert spec.servers == ("a", "b")

    def test_destinations_normalised(self):
        spec = AuditSpec(
            deployment="d", servers=("a",), destinations=["Internet"]
        )
        assert spec.destinations == ("Internet",)


class TestWithServers:
    def test_clone_keeps_parameters(self):
        base = AuditSpec(
            deployment="base",
            servers=("a", "b"),
            algorithm=RGAlgorithm.SAMPLING,
            sampling_rounds=123,
            ranking=RankingMethod.SIZE,
            top_n=3,
            seed=9,
        )
        clone = base.with_servers(("x", "y"))
        assert clone.deployment == "x & y"
        assert clone.servers == ("x", "y")
        assert clone.algorithm is RGAlgorithm.SAMPLING
        assert clone.sampling_rounds == 123
        assert clone.top_n == 3
        assert clone.seed == 9

    def test_clone_caps_required(self):
        base = AuditSpec(deployment="b", servers=("a", "b", "c"), required=3)
        clone = base.with_servers(("x", "y"))
        assert clone.required == 2

    def test_explicit_name(self):
        base = AuditSpec(deployment="b", servers=("a",))
        assert base.with_servers(("x",), deployment="D").deployment == "D"
