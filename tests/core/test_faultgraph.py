"""Unit tests for the FaultGraph structure."""

import networkx as nx
import pytest

from repro import FaultGraph, GateType
from repro.errors import FaultGraphError


def tiny() -> FaultGraph:
    g = FaultGraph("tiny")
    g.add_basic_event("a", probability=0.1)
    g.add_basic_event("b")
    g.add_gate("or", GateType.OR, ["a", "b"])
    g.add_basic_event("c")
    g.add_gate("top", GateType.AND, ["or", "c"], top=True)
    return g


class TestConstruction:
    def test_duplicate_basic_event_rejected(self):
        g = FaultGraph()
        g.add_basic_event("a")
        with pytest.raises(FaultGraphError):
            g.add_basic_event("a")

    def test_exist_ok_returns_existing(self):
        g = FaultGraph()
        g.add_basic_event("a", probability=0.2)
        assert g.add_basic_event("a", exist_ok=True) == "a"
        assert g.probability_of("a") == 0.2

    def test_exist_ok_does_not_shadow_gates(self):
        g = FaultGraph()
        g.add_basic_event("a")
        g.add_gate("g", GateType.OR, ["a"])
        with pytest.raises(FaultGraphError):
            g.add_basic_event("g", exist_ok=True)

    def test_gate_needs_children(self):
        g = FaultGraph()
        with pytest.raises(FaultGraphError):
            g.add_gate("g", GateType.OR, [])

    def test_gate_rejects_unknown_children(self):
        g = FaultGraph()
        with pytest.raises(FaultGraphError, match="unknown child"):
            g.add_gate("g", GateType.OR, ["missing"])

    def test_gate_rejects_duplicate_children(self):
        g = FaultGraph()
        g.add_basic_event("a")
        with pytest.raises(FaultGraphError, match="duplicate children"):
            g.add_gate("g", GateType.OR, ["a", "a"])

    def test_k_of_n_threshold_validated_on_add(self):
        g = FaultGraph()
        g.add_basic_event("a")
        g.add_basic_event("b")
        with pytest.raises(FaultGraphError):
            g.add_gate("g", GateType.K_OF_N, ["a", "b"], k=3)

    def test_redundancy_gate_collapses_to_and_or(self):
        g = FaultGraph()
        for name in "abc":
            g.add_basic_event(name)
        and_gate = g.add_redundancy_gate("r1", ["a", "b"], required=1)
        assert g.event(and_gate).gate is GateType.AND
        or_gate = g.add_redundancy_gate("r2", ["a", "c"], required=2)
        assert g.event(or_gate).gate is GateType.OR

    def test_redundancy_gate_k_of_n(self):
        g = FaultGraph()
        for name in "abcde":
            g.add_basic_event(name)
        gate = g.add_redundancy_gate("r", list("abcde"), required=3)
        assert g.event(gate).gate is GateType.K_OF_N
        assert g.threshold(gate) == 3  # 5 - 3 + 1

    def test_cycle_rejected(self):
        g = FaultGraph()
        g.add_basic_event("a")
        g.add_gate("g1", GateType.OR, ["a"])
        g.add_gate("g2", GateType.OR, ["g1"])
        # There is no public way to create a cycle; relabel collisions and
        # child checks prevent it.  Exercise the internal guard directly.
        g._children["g1"] = ("g2",)
        g._parents["g2"].append("g1")
        g._parents["a"].remove("g1")
        g._topo_cache = None
        with pytest.raises(FaultGraphError, match="cycle"):
            g.topological_order()


class TestInspection:
    def test_top_requires_designation(self):
        g = FaultGraph("untopped")
        g.add_basic_event("a")
        with pytest.raises(FaultGraphError, match="no top"):
            _ = g.top

    def test_contains_len_iter(self):
        g = tiny()
        assert "a" in g and "missing" not in g
        assert len(g) == 5
        assert set(iter(g)) == {"a", "b", "c", "or", "top"}

    def test_children_parents(self):
        g = tiny()
        assert g.children("or") == ("a", "b")
        assert g.parents("a") == ("or",)
        assert g.parents("top") == ()

    def test_basic_and_intermediate_partition(self):
        g = tiny()
        assert g.basic_events() == ["a", "b", "c"]
        assert g.intermediate_events() == ["or"]

    def test_probabilities_requires_full_weights(self):
        g = tiny()
        with pytest.raises(FaultGraphError, match="lack probabilities"):
            g.probabilities()
        g.set_probability("b", 0.2)
        g.set_probability("c", 0.3)
        assert g.probabilities() == {"a": 0.1, "b": 0.2, "c": 0.3}

    def test_set_probability_clears(self):
        g = tiny()
        g.set_probability("a", None)
        assert g.probability_of("a") is None

    def test_unknown_event_raises(self):
        with pytest.raises(FaultGraphError):
            tiny().event("nope")

    def test_basic_events_under(self):
        g = tiny()
        assert g.basic_events_under("or") == {"a", "b"}
        assert g.basic_events_under("top") == {"a", "b", "c"}
        assert g.basic_events_under("a") == {"a"}


class TestValidation:
    def test_valid_graph_passes(self):
        tiny().validate()

    def test_orphan_detected(self):
        g = tiny()
        g.add_basic_event("orphan")
        with pytest.raises(FaultGraphError, match="unreachable"):
            g.validate()

    def test_topological_order_children_first(self):
        g = tiny()
        order = g.topological_order()
        assert order.index("a") < order.index("or")
        assert order.index("or") < order.index("top")
        assert order.index("c") < order.index("top")


class TestEvaluation:
    def test_or_gate_propagates_any(self):
        g = tiny()
        values = g.evaluate_all(["a"])
        assert values["or"] and not values["top"]

    def test_and_gate_needs_all(self):
        g = tiny()
        assert not g.evaluate(["a", "b"])
        assert g.evaluate(["a", "c"])
        assert g.evaluate(["b", "c"])

    def test_empty_assignment(self):
        assert not tiny().evaluate([])

    def test_unknown_event_in_assignment(self):
        with pytest.raises(FaultGraphError, match="unknown events"):
            tiny().evaluate(["zzz"])

    def test_k_of_n_evaluation(self):
        g = FaultGraph()
        for name in "abc":
            g.add_basic_event(name)
        g.add_gate("top", GateType.K_OF_N, list("abc"), k=2, top=True)
        assert not g.evaluate(["a"])
        assert g.evaluate(["a", "c"])
        assert g.evaluate(["a", "b", "c"])


class TestTransforms:
    def test_copy_is_deep(self):
        g = tiny()
        clone = g.copy()
        clone.set_probability("a", 0.9)
        assert g.probability_of("a") == 0.1
        assert clone.top == "top"
        assert clone.stats() == g.stats()

    def test_relabel(self):
        g = tiny()
        clone = g.relabel({"a": "alpha", "top": "root"})
        assert "alpha" in clone and "a" not in clone
        assert clone.top == "root"
        assert clone.evaluate(["alpha", "c"])

    def test_relabel_collision_rejected(self):
        g = tiny()
        with pytest.raises(FaultGraphError, match="collapses"):
            g.relabel({"a": "b"})

    def test_subgraph(self):
        g = tiny()
        sub = g.subgraph("or")
        assert set(sub.events()) == {"a", "b", "or"}
        assert sub.top == "or"
        assert sub.evaluate(["b"])

    def test_map_probabilities(self):
        g = tiny()
        weighted = g.map_probabilities(lambda e: 0.5)
        assert weighted.probabilities() == {"a": 0.5, "b": 0.5, "c": 0.5}
        # original untouched
        assert g.probability_of("b") is None


class TestInterop:
    def test_to_networkx(self):
        g = tiny()
        nxg = g.to_networkx()
        assert isinstance(nxg, nx.DiGraph)
        assert nxg.number_of_nodes() == 5
        assert nxg.has_edge("top", "or")
        assert nxg.nodes["or"]["gate"] == "or"
        assert nxg.nodes["a"]["probability"] == 0.1

    def test_stats(self):
        stats = tiny().stats()
        assert stats == {"events": 5, "basic_events": 3, "gates": 2, "edges": 4}
