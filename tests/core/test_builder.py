"""Unit tests for the dependency-graph builder (§4.1.1 Steps 1-6)."""

import pytest

from repro import GateType, build_dependency_graph, minimal_risk_groups
from repro.core.builder import node_identifier, node_kind
from repro.depdb import (
    DepDB,
    HardwareDependency,
    NetworkDependency,
    SoftwareDependency,
)
from repro.errors import SpecificationError


@pytest.fixture
def sample_depdb() -> DepDB:
    """Figure 2/3: S1 and S2 with network, hardware and software records."""
    db = DepDB()
    for server in ("S1", "S2"):
        db.add(NetworkDependency(server, "Internet", ("ToR1", "Core1")))
        db.add(NetworkDependency(server, "Internet", ("ToR1", "Core2")))
        db.add(
            HardwareDependency(server, "CPU", f"{server}-Intel(R)X5550@2.6GHz")
        )
        db.add(HardwareDependency(server, "Disk", f"{server}-SED900"))
    db.add(SoftwareDependency("QueryEngine1", "S1", ("libc6", "libgcc1")))
    db.add(SoftwareDependency("Riak1", "S1", ("libc6", "libsvn1")))
    db.add(SoftwareDependency("QueryEngine2", "S2", ("libc6", "libgcc1")))
    db.add(SoftwareDependency("Riak2", "S2", ("libc6", "libsvn1")))
    return db


class TestNodeNaming:
    def test_kind_and_identifier(self):
        assert node_kind("device:ToR1") == "device"
        assert node_identifier("device:ToR1") == "ToR1"
        assert node_kind("unprefixed") == ""
        assert node_identifier("unprefixed") == "unprefixed"


class TestStructure:
    def test_top_is_and_over_servers(self, sample_depdb):
        g = build_dependency_graph(sample_depdb, ["S1", "S2"])
        assert g.event(g.top).gate is GateType.AND
        assert set(g.children(g.top)) == {"server:S1", "server:S2"}

    def test_server_gate_is_or_over_categories(self, sample_depdb):
        g = build_dependency_graph(sample_depdb, ["S1", "S2"])
        kids = set(g.children("server:S1"))
        assert kids == {"host:S1", "net:S1", "hardware:S1", "software:S1"}
        assert g.event("server:S1").gate is GateType.OR

    def test_redundant_paths_are_anded(self, sample_depdb):
        g = build_dependency_graph(sample_depdb, ["S1"])
        net = g.children("net:S1")[0]
        assert g.event(net).gate is GateType.AND
        assert len(g.children(net)) == 2  # two ToR1 routes

    def test_devices_shared_across_servers(self, sample_depdb):
        g = build_dependency_graph(sample_depdb, ["S1", "S2"])
        # ToR1 sits on both routes of both servers: one shared leaf node.
        parents = g.parents("device:ToR1")
        servers = {p.split(":")[1].split("->")[0] for p in parents}
        assert servers == {"S1", "S2"}

    def test_packages_shared_across_programs(self, sample_depdb):
        g = build_dependency_graph(sample_depdb, ["S1", "S2"])
        parents = g.parents("pkg:libc6")
        assert set(parents) == {
            "sw:QueryEngine1",
            "sw:Riak1",
            "sw:QueryEngine2",
            "sw:Riak2",
        }

    def test_hardware_unique_per_server_here(self, sample_depdb):
        g = build_dependency_graph(sample_depdb, ["S1", "S2"])
        assert len(g.parents("hw:S1-SED900")) == 1

    def test_figure_4c_minimal_rgs(self, sample_depdb):
        g = build_dependency_graph(sample_depdb, ["S1", "S2"])
        groups = minimal_risk_groups(g)
        assert frozenset({"device:ToR1"}) in groups
        assert frozenset({"pkg:libc6"}) in groups
        assert frozenset({"device:Core1", "device:Core2"}) in groups

    def test_required_redundancy_gate(self, sample_depdb):
        g = build_dependency_graph(sample_depdb, ["S1", "S2"], required=2)
        # needs both alive: any server failure fails the deployment
        assert g.event(g.top).gate is GateType.OR

    def test_single_server_top_is_server(self, sample_depdb):
        g = build_dependency_graph(sample_depdb, ["S1"])
        assert g.top == "server:S1"


class TestOptions:
    def test_programs_filter(self, sample_depdb):
        g = build_dependency_graph(
            sample_depdb, ["S1"], programs={"S1": ["Riak1"]}
        )
        assert "sw:Riak1" in g
        assert "sw:QueryEngine1" not in g

    def test_missing_program_rejected(self, sample_depdb):
        with pytest.raises(SpecificationError, match="no software records"):
            build_dependency_graph(sample_depdb, ["S1"], programs=["nope"])

    def test_destination_filter(self, sample_depdb):
        g = build_dependency_graph(
            sample_depdb, ["S1"], destinations=["elsewhere"]
        )
        assert "net:S1" not in g

    def test_without_host_events(self, sample_depdb):
        g = build_dependency_graph(
            sample_depdb, ["S1", "S2"], include_host_events=False
        )
        assert "host:S1" not in g

    def test_host_only_server_needs_host_events(self):
        db = DepDB()
        db.add(NetworkDependency("other", "Internet", ("x",)))
        with pytest.raises(SpecificationError, match="nothing to audit"):
            build_dependency_graph(db, ["bare"], include_host_events=False)

    def test_weigher_applied_to_leaves(self, sample_depdb):
        g = build_dependency_graph(
            sample_depdb,
            ["S1"],
            weigher=lambda kind, ident: 0.1 if kind == "device" else 0.05,
        )
        assert g.probability_of("device:ToR1") == 0.1
        assert g.probability_of("host:S1") == 0.05

    def test_duplicate_servers_rejected(self, sample_depdb):
        with pytest.raises(SpecificationError, match="duplicate"):
            build_dependency_graph(sample_depdb, ["S1", "S1"])

    def test_empty_servers_rejected(self, sample_depdb):
        with pytest.raises(SpecificationError):
            build_dependency_graph(sample_depdb, [])

    def test_invalid_required(self, sample_depdb):
        with pytest.raises(SpecificationError):
            build_dependency_graph(sample_depdb, ["S1"], required=2)

    def test_graph_validates(self, sample_depdb):
        g = build_dependency_graph(sample_depdb, ["S1", "S2"])
        g.validate()  # should not raise
