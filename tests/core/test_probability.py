"""Unit tests for probability computations (§4.1.3 worked example)."""

import pytest

from repro import FaultGraph, GateType
from repro.core.probability import (
    cut_probability,
    expected_error_minhash,
    graph_probability_sampled,
    relative_importance,
    top_event_probability,
    tree_probability,
    union_probability,
)
from repro.errors import AnalysisError

CUTS_4B = [frozenset({"A2"}), frozenset({"A1", "A3"})]


class TestCutProbability:
    def test_product(self, figure_4b_probs):
        assert cut_probability({"A1", "A3"}, figure_4b_probs) == pytest.approx(
            0.03
        )

    def test_single(self, figure_4b_probs):
        assert cut_probability({"A2"}, figure_4b_probs) == 0.2

    def test_missing_probability(self):
        with pytest.raises(AnalysisError, match="no failure probability"):
            cut_probability({"zz"}, {})


class TestUnionProbability:
    def test_paper_inclusion_exclusion(self, figure_4b_probs):
        # Pr(T) = 0.1*0.3 + 0.2 - 0.1*0.3*0.2 = 0.224
        assert union_probability(CUTS_4B, figure_4b_probs) == pytest.approx(
            0.224
        )

    def test_monte_carlo_agrees(self, figure_4b_probs):
        estimate = union_probability(
            CUTS_4B, figure_4b_probs, method="monte-carlo", mc_rounds=200_000
        )
        assert estimate == pytest.approx(0.224, abs=0.01)

    def test_rare_event_upper_bound(self, figure_4b_probs):
        bound = union_probability(CUTS_4B, figure_4b_probs, method="rare-event")
        assert bound == pytest.approx(0.23)
        assert bound >= 0.224

    def test_esary_proschan_bound(self, figure_4b_probs):
        bound = union_probability(
            CUTS_4B, figure_4b_probs, method="esary-proschan"
        )
        # 1 - (1-0.2)(1-0.03) = 0.224; equals exact here because the two
        # cuts share no events.
        assert bound == pytest.approx(0.224)

    def test_overlapping_cuts_inclusion_exclusion(self):
        probs = {"a": 0.5, "b": 0.5}
        cuts = [frozenset({"a"}), frozenset({"a", "b"})]
        # Union = Pr(a) since second cut implies the first.
        assert union_probability(cuts, probs) == pytest.approx(0.5)

    def test_exact_refused_beyond_limit(self):
        probs = {f"e{i}": 0.01 for i in range(30)}
        cuts = [frozenset({f"e{i}"}) for i in range(30)]
        with pytest.raises(AnalysisError, match="exceed"):
            union_probability(cuts, probs, method="exact")

    def test_auto_switches_to_monte_carlo(self):
        probs = {f"e{i}": 0.01 for i in range(30)}
        cuts = [frozenset({f"e{i}"}) for i in range(30)]
        value = union_probability(cuts, probs, mc_rounds=50_000, seed=1)
        exact = 1 - 0.99**30
        assert value == pytest.approx(exact, abs=0.01)

    def test_empty_cuts_rejected(self):
        with pytest.raises(AnalysisError):
            union_probability([], {})

    def test_unknown_method(self, figure_4b_probs):
        with pytest.raises(AnalysisError, match="unknown method"):
            union_probability(CUTS_4B, figure_4b_probs, method="zzz")


class TestRelativeImportance:
    def test_paper_values(self, figure_4b_probs):
        top = top_event_probability(CUTS_4B, figure_4b_probs)
        assert relative_importance({"A2"}, top, figure_4b_probs) == (
            pytest.approx(0.8929, abs=1e-4)
        )
        assert relative_importance({"A1", "A3"}, top, figure_4b_probs) == (
            pytest.approx(0.1339, abs=1e-4)
        )

    def test_invalid_top_probability(self, figure_4b_probs):
        with pytest.raises(AnalysisError):
            relative_importance({"A2"}, 0.0, figure_4b_probs)


class TestTreeProbability:
    def test_simple_or(self):
        g = FaultGraph()
        g.add_basic_event("a", probability=0.1)
        g.add_basic_event("b", probability=0.2)
        g.add_gate("top", GateType.OR, ["a", "b"], top=True)
        assert tree_probability(g) == pytest.approx(1 - 0.9 * 0.8)

    def test_simple_and(self):
        g = FaultGraph()
        g.add_basic_event("a", probability=0.1)
        g.add_basic_event("b", probability=0.2)
        g.add_gate("top", GateType.AND, ["a", "b"], top=True)
        assert tree_probability(g) == pytest.approx(0.02)

    def test_k_of_n_poisson_binomial(self):
        g = FaultGraph()
        for name in "abc":
            g.add_basic_event(name, probability=0.5)
        g.add_gate("top", GateType.K_OF_N, list("abc"), k=2, top=True)
        # P(X >= 2) for Binomial(3, 0.5) = 4/8 = 0.5
        assert tree_probability(g) == pytest.approx(0.5)

    def test_shared_nodes_rejected(self, figure_4b):
        with pytest.raises(AnalysisError, match="not a tree"):
            tree_probability(figure_4b)

    def test_missing_weight_rejected(self):
        g = FaultGraph()
        g.add_basic_event("a")
        g.add_gate("top", GateType.OR, ["a"], top=True)
        with pytest.raises(AnalysisError, match="no probability"):
            tree_probability(g)


class TestGraphProbabilitySampled:
    def test_matches_cut_set_probability(self, figure_4b, figure_4b_probs):
        sampled = graph_probability_sampled(figure_4b, rounds=200_000, seed=0)
        assert sampled == pytest.approx(0.224, abs=0.01)


class TestMinHashError:
    def test_broder_bound(self):
        assert expected_error_minhash(100) == pytest.approx(0.1)
        assert expected_error_minhash(400) == pytest.approx(0.05)

    def test_invalid_size(self):
        with pytest.raises(AnalysisError):
            expected_error_minhash(0)
