"""Unit tests for dependency-graph composition."""

import pytest

from repro import FaultGraph, GateType, compose, minimal_risk_groups
from repro.errors import FaultGraphError


def service_graph(name: str, leaves: list[str]) -> FaultGraph:
    g = FaultGraph(name)
    for leaf in leaves:
        g.add_basic_event(leaf)
    g.add_gate(f"{name}-top", GateType.OR, leaves, top=True)
    return g


@pytest.fixture
def ec2_graph() -> FaultGraph:
    """EC2 instance graph with a placeholder for the EBS service."""
    g = FaultGraph("ec2")
    g.add_basic_event("service:EBS")
    g.add_basic_event("hv1")
    g.add_gate("ec2-top", GateType.OR, ["service:EBS", "hv1"], top=True)
    return g


class TestCompose:
    def test_placeholder_replaced_by_subgraph(self, ec2_graph):
        ebs = service_graph("ebs", ["ebs-server", "ebs-disk"])
        composed = compose(ec2_graph, {"service:EBS": ebs})
        assert "service:EBS" not in composed
        assert composed.evaluate(["ebs-server"])  # EBS failure fails EC2
        assert composed.evaluate(["hv1"])

    def test_shared_infrastructure_exposed(self):
        """The paper's intro scenario: one EBS server under two 'redundant'
        EC2 instances shows up as a singleton RG after composition."""
        ec2 = FaultGraph("redundant-ec2")
        ec2.add_basic_event("svc:ebs-a")
        ec2.add_basic_event("svc:ebs-b")
        ec2.add_gate("i1", GateType.OR, ["svc:ebs-a"])
        ec2.add_gate("i2", GateType.OR, ["svc:ebs-b"])
        ec2.add_gate("app", GateType.AND, ["i1", "i2"], top=True)
        # Both EBS volumes secretly live on one server.
        ebs_a = service_graph("ebs-a", ["ebs-server-7"])
        ebs_b = service_graph("ebs-b", ["ebs-server-7"])
        composed = compose(ec2, {"svc:ebs-a": ebs_a, "svc:ebs-b": ebs_b})
        assert frozenset({"ebs-server-7"}) in minimal_risk_groups(composed)

    def test_unknown_placeholder_rejected(self, ec2_graph):
        with pytest.raises(FaultGraphError, match="not present"):
            compose(ec2_graph, {"nope": service_graph("s", ["x"])})

    def test_gate_placeholder_rejected(self, ec2_graph):
        with pytest.raises(FaultGraphError, match="basic event"):
            compose(ec2_graph, {"ec2-top": service_graph("s", ["x"])})

    def test_conflicting_probabilities_rejected(self, ec2_graph):
        sub = FaultGraph("s")
        sub.add_basic_event("shared", probability=0.5)
        sub.add_gate("s-top", GateType.OR, ["shared"], top=True)
        primary = FaultGraph("p")
        primary.add_basic_event("ph")
        primary.add_basic_event("shared", probability=0.1)
        primary.add_gate("p-top", GateType.OR, ["ph", "shared"], top=True)
        with pytest.raises(FaultGraphError, match="conflicting"):
            compose(primary, {"ph": sub})

    def test_probability_filled_from_either_side(self):
        sub = FaultGraph("s")
        sub.add_basic_event("shared", probability=0.5)
        sub.add_gate("s-top", GateType.OR, ["shared"], top=True)
        primary = FaultGraph("p")
        primary.add_basic_event("ph")
        primary.add_basic_event("shared")  # unweighted here
        primary.add_gate("p-top", GateType.OR, ["ph", "shared"], top=True)
        composed = compose(primary, {"ph": sub})
        assert composed.probability_of("shared") == 0.5

    def test_gate_vs_basic_conflict_rejected(self, ec2_graph):
        sub = FaultGraph("s")
        sub.add_basic_event("x")
        sub.add_gate("hv1", GateType.OR, ["x"], top=True)  # collides
        with pytest.raises(FaultGraphError, match="gate in one"):
            compose(ec2_graph, {"service:EBS": sub})

    def test_composed_graph_validates(self, ec2_graph):
        ebs = service_graph("ebs", ["ebs-server"])
        composed = compose(ec2_graph, {"service:EBS": ebs})
        composed.validate()
        assert composed.top == "ec2-top"
