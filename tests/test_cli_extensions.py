"""Tests for the drift and importance CLI subcommands."""

import pytest

from repro.cli import main

V1 = (
    '<src="S1" dst="Internet" route="tor1,agg1,core1"/>\n'
    '<src="S2" dst="Internet" route="tor2,agg2,core2"/>\n'
)
V2 = (
    '<src="S1" dst="Internet" route="tor1,agg1,core1"/>\n'
    '<src="S2" dst="Internet" route="tor2,agg1,core2"/>\n'
)


@pytest.fixture
def snapshots(tmp_path):
    before = tmp_path / "v1.txt"
    after = tmp_path / "v2.txt"
    before.write_text(V1)
    after.write_text(V2)
    return str(before), str(after)


class TestDriftCommand:
    def test_regression_exits_2(self, snapshots, capsys):
        before, after = snapshots
        code = main(["drift", before, after, "--servers", "S1,S2"])
        out = capsys.readouterr().out
        assert code == 2
        assert "REGRESSED" in out
        assert "device:agg1" in out

    def test_no_change_exits_0(self, snapshots, capsys):
        before, _after = snapshots
        code = main(["drift", before, before, "--servers", "S1,S2"])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_probability_flag(self, snapshots, capsys):
        before, after = snapshots
        code = main(
            ["drift", before, after, "--servers", "S1,S2",
             "--probability", "0.1"]
        )
        assert code == 2


class TestImportanceCommand:
    def test_ranking_printed(self, snapshots, capsys):
        _before, after = snapshots
        code = main(
            ["importance", after, "--servers", "S1,S2", "--top", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        # The shared aggregation switch dominates every measure.
        first = out.splitlines()[1]
        assert "device:agg1" in first
        assert "I_B" in first

    def test_bad_servers_handled(self, snapshots, capsys):
        _before, after = snapshots
        assert main(["importance", after, "--servers", ","]) == 1
