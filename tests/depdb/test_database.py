"""Unit tests for the DepDB store."""

import pytest

from repro.depdb import (
    DepDB,
    HardwareDependency,
    NetworkDependency,
    SoftwareDependency,
)


@pytest.fixture
def db() -> DepDB:
    db = DepDB()
    db.add(NetworkDependency("S1", "Internet", ("ToR1", "Core1")))
    db.add(NetworkDependency("S1", "Internet", ("ToR1", "Core2")))
    db.add(NetworkDependency("S1", "S2", ("ToR1",)))
    db.add(HardwareDependency("S1", "CPU", "X5550"))
    db.add(SoftwareDependency("Riak", "S1", ("libc6",)))
    db.add(SoftwareDependency("Redis", "S1", ("libc6", "jemalloc")))
    return db


class TestIngest:
    def test_duplicates_ignored(self, db):
        before = len(db)
        assert not db.add(NetworkDependency("S1", "Internet", ("ToR1", "Core1")))
        assert len(db) == before

    def test_add_all_counts_new(self, db):
        new = [
            NetworkDependency("S1", "Internet", ("ToR1", "Core1")),  # dup
            HardwareDependency("S9", "Disk", "WD"),
        ]
        assert db.add_all(new) == 1

    def test_merge(self, db):
        other = DepDB([HardwareDependency("S3", "Disk", "WD")])
        assert db.merge(other) == 1
        assert db.hardware_of("S3")

    def test_counts(self, db):
        assert db.counts() == {"network": 3, "hardware": 1, "software": 2}


class TestQueries:
    def test_network_paths_by_destination(self, db):
        assert len(db.network_paths("S1", "Internet")) == 2
        assert len(db.network_paths("S1")) == 3
        assert db.network_paths("S9") == []

    def test_network_destinations_order(self, db):
        assert db.network_destinations("S1") == ["Internet", "S2"]

    def test_software_on_with_filter(self, db):
        assert len(db.software_on("S1")) == 2
        only = db.software_on("S1", programs=["Riak"])
        assert [r.pgm for r in only] == ["Riak"]

    def test_software_named(self, db):
        assert db.software_named("Redis")[0].hw == "S1"

    def test_hosts_include_destinations(self, db):
        # Regression: hosts that only ever appear as a network dst
        # (Internet, S2) used to be invisible.
        assert db.hosts() == ["S1", "Internet", "S2"]

    def test_hosts_dst_only_host_visible(self):
        db = DepDB([NetworkDependency("A", "B", ("sw1",))])
        assert db.hosts() == ["A", "B"]

    def test_records_returns_everything(self, db):
        assert len(db.records()) == len(db) == 6


class TestPersistence:
    def test_line_format_round_trip(self, db):
        clone = DepDB.loads(db.dumps())
        assert sorted(map(str, clone.records())) == sorted(
            map(str, db.records())
        )

    def test_json_round_trip(self, db):
        clone = DepDB.from_json(db.to_json())
        assert clone.counts() == db.counts()
        assert clone.network_paths("S1", "Internet") == db.network_paths(
            "S1", "Internet"
        )

    def test_invalid_json_rejected(self):
        from repro.errors import DependencyDataError

        with pytest.raises(DependencyDataError):
            DepDB.from_json("{broken")


class TestJsonValidation:
    """Malformed payloads fail with a clean error naming the record —
    never a raw KeyError/TypeError out of the parser (regression)."""

    def _error(self, text):
        from repro.errors import DependencyDataError

        with pytest.raises(DependencyDataError) as exc:
            DepDB.from_json(text)
        return str(exc.value)

    def test_top_level_must_be_object(self):
        assert "must be an object" in self._error("[]")

    def test_section_must_be_list(self):
        assert "list" in self._error('{"network": {}}')

    def test_entry_must_be_object(self):
        message = self._error('{"network": ["nope"]}')
        assert "network entry #0" in message

    def test_missing_field_named(self):
        message = self._error(
            '{"hardware": [{"hw": "S1", "type": "CPU"}]}'
        )
        assert "hardware entry #0" in message
        assert "dep" in message

    def test_wrong_field_type_named(self):
        message = self._error(
            '{"network": [{"src": "S1", "dst": "S2", "route": "ToR1"}]}'
        )
        assert "network entry #0" in message
        assert "route" in message

    def test_list_element_must_be_string(self):
        message = self._error(
            '{"software": [{"pgm": "Riak", "hw": "S1", "dep": ["libc6", 3]}]}'
        )
        assert "software entry #0" in message

    def test_later_entry_index_reported(self):
        good = '{"src": "A", "dst": "B", "route": ["r"]}'
        message = self._error(
            '{"network": [%s, {"src": "A"}]}' % good
        )
        assert "network entry #1" in message
