"""Memory ≡ SQLite backend parity — the tentpole contract.

Property suite: for any record set in any insertion order, both
backends answer every query identically, honour the same ``records()``
order contract, hash to the same content address, and feed
:class:`~repro.engine.AuditEngine` into byte-identical reports for any
worker count.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.depdb import (
    DepDB,
    HardwareDependency,
    MemoryBackend,
    NetworkDependency,
    SoftwareDependency,
    SQLiteBackend,
)

# Identifier alphabet safe for the Table-1 line codec (no quotes,
# commas or whitespace — commas are the codec's list separator).
_NAME = st.text("abcdefgh123._-", min_size=1, max_size=6)

_network = st.builds(
    NetworkDependency,
    src=_NAME,
    dst=_NAME,
    route=st.lists(_NAME, min_size=1, max_size=3).map(tuple),
)
_hardware = st.builds(
    HardwareDependency, hw=_NAME, type=_NAME, dep=_NAME
)
_software = st.builds(
    SoftwareDependency,
    pgm=_NAME,
    hw=_NAME,
    dep=st.lists(_NAME, min_size=1, max_size=3).map(tuple),
)
_records = st.lists(
    st.one_of(_network, _hardware, _software), max_size=30
)


def _pair(records):
    """The same ingest replayed into both backends."""
    memory = DepDB(records, backend=MemoryBackend())
    sqlite = DepDB(records, backend=SQLiteBackend(":memory:"))
    return memory, sqlite


@settings(max_examples=60, deadline=None)
@given(records=_records)
def test_query_parity(records):
    memory, sqlite = _pair(records)
    try:
        assert sqlite.records() == memory.records()
        assert sqlite.counts() == memory.counts()
        assert len(sqlite) == len(memory)
        assert sqlite.hosts() == memory.hosts()
        assert sqlite.content_hash() == memory.content_hash()
        hosts = memory.hosts()
        for host in hosts:
            assert sqlite.network_paths(host) == memory.network_paths(host)
            assert sqlite.network_destinations(
                host
            ) == memory.network_destinations(host)
            assert sqlite.hardware_of(host) == memory.hardware_of(host)
            assert sqlite.software_on(host) == memory.software_on(host)
            for dst in memory.network_destinations(host):
                assert sqlite.network_paths(host, dst) == memory.network_paths(
                    host, dst
                )
        for record in memory.records():
            if isinstance(record, SoftwareDependency):
                assert sqlite.software_named(
                    record.pgm
                ) == memory.software_named(record.pgm)
    finally:
        sqlite.close()


@settings(max_examples=40, deadline=None)
@given(records=_records)
def test_insertion_order_independent_content_hash(records):
    forward = DepDB(records)
    backward = DepDB(list(reversed(records)))
    sqlite = DepDB(list(reversed(records)), backend=SQLiteBackend(":memory:"))
    try:
        assert forward.content_hash() == backward.content_hash()
        assert sqlite.content_hash() == forward.content_hash()
    finally:
        sqlite.close()


@settings(max_examples=40, deadline=None)
@given(records=_records)
def test_xml_round_trip_through_both_backends(records):
    memory, sqlite = _pair(records)
    try:
        assert sqlite.dumps() == memory.dumps()
        reloaded = DepDB.loads(sqlite.dumps())
        assert reloaded.records() == memory.records()
        reloaded_sqlite = DepDB.loads(
            memory.dumps(), backend=SQLiteBackend(":memory:")
        )
        try:
            assert reloaded_sqlite.records() == memory.records()
        finally:
            reloaded_sqlite.close()
    finally:
        sqlite.close()


@settings(max_examples=40, deadline=None)
@given(records=_records)
def test_json_round_trip_through_both_backends(records):
    memory, sqlite = _pair(records)
    try:
        assert sqlite.to_json() == memory.to_json()
        reloaded = DepDB.from_json(sqlite.to_json())
        assert reloaded.records() == memory.records()
        reloaded_sqlite = DepDB.from_json(
            memory.to_json(), backend=SQLiteBackend(":memory:")
        )
        try:
            assert reloaded_sqlite.records() == memory.records()
        finally:
            reloaded_sqlite.close()
    finally:
        sqlite.close()


# --------------------------------------------------------------------- #
# Audit parity (deterministic; workers exercise the pickle path)
# --------------------------------------------------------------------- #

_DEPLOYMENT = [
    NetworkDependency("S1", "Internet", ("ToR1", "Core1")),
    NetworkDependency("S1", "Internet", ("ToR1", "Core2")),
    NetworkDependency("S2", "Internet", ("ToR2", "Core1")),
    HardwareDependency("S1", "CPU", "X5550"),
    HardwareDependency("S2", "CPU", "X5550"),
    HardwareDependency("S1", "Disk", "WD-1TB"),
    HardwareDependency("S2", "Disk", "WD-1TB"),
    SoftwareDependency("Riak1", "S1", ("libc6", "libssl")),
    SoftwareDependency("Riak2", "S2", ("libc6", "libssl")),
]


@pytest.mark.parametrize("algorithm", ["minimal", "sampling"])
@pytest.mark.parametrize("workers", [0, 2])
def test_audit_report_parity(tmp_path, algorithm, workers):
    from repro import api

    memory = DepDB(_DEPLOYMENT)
    sqlite = DepDB.sqlite(tmp_path / "dep.sqlite", records=_DEPLOYMENT)
    try:
        reports = []
        for db in (memory, sqlite):
            from repro.engine import AuditEngine

            engine = AuditEngine(n_workers=workers)
            request = api.AuditRequest(
                servers=("S1", "S2"),
                depdb=db.dumps(),
                algorithm=algorithm,
                rounds=20_000,
                seed=7,
            )
            result = api.execute_request(request, engine=engine)
            report = api.report_for_request(
                request, result.audit, result.structural_hash
            )
            reports.append(report.to_json().encode("utf-8"))
        assert reports[0] == reports[1]
    finally:
        sqlite.close()


def test_engine_audit_spec_accepts_sqlite_store(tmp_path):
    """SIAAuditor queries the store directly — not via a dump."""
    from repro.core.spec import AuditSpec
    from repro.engine.incremental import DeltaAuditEngine

    memory = DepDB(_DEPLOYMENT)
    sqlite = DepDB.sqlite(tmp_path / "dep.sqlite", records=_DEPLOYMENT)
    try:
        spec = AuditSpec(deployment="riak", servers=("S1", "S2"))
        audits = [
            DeltaAuditEngine().audit_spec(db, spec) for db in (memory, sqlite)
        ]
        assert audits[0].to_dict() == audits[1].to_dict()
    finally:
        sqlite.close()
