"""Unit tests for Table-1 dependency records."""

import pytest

from repro.depdb import HardwareDependency, NetworkDependency, SoftwareDependency
from repro.errors import DependencyDataError


class TestNetworkDependency:
    def test_valid_record(self):
        record = NetworkDependency("S1", "Internet", ("ToR1", "Core1"))
        assert record.devices == frozenset({"ToR1", "Core1"})

    def test_whitespace_stripped(self):
        record = NetworkDependency(" S1 ", " D ", (" x ", "y"))
        assert record.src == "S1"
        assert record.route == ("x", "y")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"src": "", "dst": "D", "route": ("x",)},
            {"src": "S", "dst": "", "route": ("x",)},
            {"src": "S", "dst": "D", "route": ()},
            {"src": "S", "dst": "D", "route": ("", "y")},
        ],
    )
    def test_invalid_records(self, kwargs):
        with pytest.raises(DependencyDataError):
            NetworkDependency(**kwargs)

    def test_hashable_and_equal(self):
        a = NetworkDependency("S", "D", ("x",))
        b = NetworkDependency("S", "D", ("x",))
        assert a == b and hash(a) == hash(b)


class TestHardwareDependency:
    def test_valid_record(self):
        record = HardwareDependency("S1", "CPU", "Intel-X5550")
        assert record.hw == "S1"

    @pytest.mark.parametrize("field", ["hw", "type", "dep"])
    def test_empty_fields_rejected(self, field):
        kwargs = {"hw": "S", "type": "CPU", "dep": "m"}
        kwargs[field] = "  "
        with pytest.raises(DependencyDataError):
            HardwareDependency(**kwargs)


class TestSoftwareDependency:
    def test_valid_record(self):
        record = SoftwareDependency("Riak", "S1", ("libc6", "libssl"))
        assert record.packages == frozenset({"libc6", "libssl"})

    def test_empty_dep_list_allowed(self):
        assert SoftwareDependency("standalone", "S1", ()).dep == ()

    def test_empty_package_name_rejected(self):
        with pytest.raises(DependencyDataError):
            SoftwareDependency("p", "S1", ("libc6", ""))
