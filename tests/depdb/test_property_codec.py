"""Property-based tests for the dependency-record codec and DepDB."""

from hypothesis import given, settings, strategies as st

from repro.depdb import (
    DepDB,
    HardwareDependency,
    NetworkDependency,
    SoftwareDependency,
    dumps,
    loads,
)

# Identifier alphabet excludes '"' and ',' (the format's delimiters).
_ident = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"),
        whitelist_characters="-_.()@/",
    ),
    min_size=1,
    max_size=20,
).map(str.strip).filter(bool)


network_records = st.builds(
    NetworkDependency,
    src=_ident,
    dst=_ident,
    route=st.lists(_ident, min_size=1, max_size=5).map(tuple),
)
hardware_records = st.builds(
    HardwareDependency, hw=_ident, type=_ident, dep=_ident
)
software_records = st.builds(
    SoftwareDependency,
    pgm=_ident,
    hw=_ident,
    dep=st.lists(_ident, min_size=1, max_size=5).map(tuple),
)
any_records = st.one_of(network_records, hardware_records, software_records)


@settings(max_examples=150, deadline=None)
@given(st.lists(any_records, max_size=10))
def test_line_format_round_trips(records):
    assert loads(dumps(records)) == records


@settings(max_examples=80, deadline=None)
@given(st.lists(any_records, max_size=12))
def test_depdb_json_round_trip_preserves_queries(records):
    db = DepDB(records)
    clone = DepDB.from_json(db.to_json())
    assert clone.counts() == db.counts()
    for host in db.hosts():
        assert clone.network_paths(host) == db.network_paths(host)
        assert clone.hardware_of(host) == db.hardware_of(host)
        assert clone.software_on(host) == db.software_on(host)


@settings(max_examples=80, deadline=None)
@given(st.lists(any_records, max_size=12))
def test_depdb_deduplicates_idempotently(records):
    db = DepDB(records)
    before = len(db)
    assert db.add_all(records) == 0  # every record already present
    assert len(db) == before
