"""Unit tests for the Table-1 line codec."""

import pytest

from repro.depdb import (
    HardwareDependency,
    NetworkDependency,
    SoftwareDependency,
    dump_record,
    dumps,
    loads,
    parse_line,
)
from repro.errors import DependencyDataError

#: Verbatim lines from Figure 3 of the paper.
FIGURE_3 = """
<src="S1" dst="Internet" route="ToR1,Core1"/>
<src="S1" dst="Internet" route="ToR1,Core2"/>
<src="S2" dst="Internet" route="ToR1,Core1"/>
<src="S2" dst="Internet" route="ToR1,Core2"/>
------------------------------------
<hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>
<hw="S1" type="Disk" dep="S1-SED900"/>
<hw="S2" type="CPU" dep="S2-Intel(R)X5550@2.6GHz"/>
<hw="S2" type="Disk" dep="S2-SED900"/>
------------------------------------
<pgm="QueryEngine1" hw="S1" dep="libc6,libgccl">
<pgm="Riak1" hw="S1" dep="libc6,libsvn1">
<pgm="QueryEngine2" hw="S2" dep="libc6,libgccl">
<pgm="Riak2" hw="S2" dep="libc6,libsvn1">
"""


class TestParseLine:
    def test_network_line(self):
        record = parse_line('<src="S1" dst="Internet" route="ToR1,Core1"/>')
        assert isinstance(record, NetworkDependency)
        assert record.route == ("ToR1", "Core1")

    def test_hardware_line(self):
        record = parse_line('<hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>')
        assert isinstance(record, HardwareDependency)
        assert record.type == "CPU"

    def test_software_line_without_closing_slash(self):
        record = parse_line('<pgm="Riak1" hw="S1" dep="libc6,libsvn1">')
        assert isinstance(record, SoftwareDependency)
        assert record.dep == ("libc6", "libsvn1")

    @pytest.mark.parametrize(
        "line",
        [
            "not xml at all",
            "<>",
            '<src="S1" route="x"/>',           # missing dst
            '<src="S1" dst="D" route="x" extra="y"/>',
            '<hw="S1" type="CPU"/>',           # missing dep
            '<src="S" dst="D" route=""/>',     # empty route
        ],
    )
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(DependencyDataError):
            parse_line(line)


class TestLoads:
    def test_figure_3_parses_completely(self):
        records = loads(FIGURE_3)
        assert len(records) == 12
        kinds = [type(r).__name__ for r in records]
        assert kinds.count("NetworkDependency") == 4
        assert kinds.count("HardwareDependency") == 4
        assert kinds.count("SoftwareDependency") == 4

    def test_separator_and_comment_lines_skipped(self):
        text = '# comment\n---\n<hw="S" type="CPU" dep="m"/>\n\n'
        assert len(loads(text)) == 1

    def test_error_reports_line_number(self):
        with pytest.raises(DependencyDataError, match="line 2"):
            loads('<hw="S" type="CPU" dep="m"/>\n<broken"')


class TestRoundTrip:
    def test_dump_then_load(self):
        records = [
            NetworkDependency("S1", "Internet", ("a", "b")),
            HardwareDependency("S1", "Disk", "SED900"),
            SoftwareDependency("Riak", "S1", ("libc6",)),
        ]
        assert loads(dumps(records)) == records

    def test_dump_record_formats(self):
        line = dump_record(NetworkDependency("S", "D", ("x", "y")))
        assert line == '<src="S" dst="D" route="x,y"/>'

    def test_dump_unknown_type_rejected(self):
        with pytest.raises(DependencyDataError):
            dump_record("not a record")
