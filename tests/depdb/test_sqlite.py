"""SQLite DepDB backend: durability, dedup, snapshots, lifecycle."""

import pickle

import pytest

from repro.depdb import (
    DepDB,
    HardwareDependency,
    NetworkDependency,
    SoftwareDependency,
    SQLiteBackend,
)
from repro.errors import DependencyDataError

RECORDS = [
    NetworkDependency("S1", "Internet", ("ToR1", "Core1")),
    NetworkDependency("S1", "Internet", ("ToR1", "Core2")),
    NetworkDependency("S1", "S2", ("ToR1",)),
    HardwareDependency("S1", "CPU", "X5550"),
    SoftwareDependency("Riak", "S1", ("libc6",)),
    SoftwareDependency("Redis", "S1", ("libc6", "jemalloc")),
]


@pytest.fixture
def db(tmp_path):
    db = DepDB.sqlite(tmp_path / "dep.sqlite", records=RECORDS)
    yield db
    db.close()


class TestDurability:
    def test_records_survive_reopen(self, tmp_path):
        path = tmp_path / "dep.sqlite"
        with DepDB.sqlite(path, records=RECORDS) as db:
            expected = db.records()
        with DepDB.sqlite(path) as reopened:
            assert reopened.records() == expected

    def test_snapshots_survive_reopen(self, tmp_path):
        path = tmp_path / "dep.sqlite"
        with DepDB.sqlite(path, records=RECORDS) as db:
            snap = db.snapshot("v1")
        with DepDB.sqlite(path) as reopened:
            last = reopened.last_snapshot()
            assert last is not None
            assert last.digest == snap.digest
            assert last.label == "v1"
            assert last.counts == (3, 1, 2)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "dep.sqlite"
        with DepDB.sqlite(path):
            pass
        import sqlite3

        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
            )
        conn.close()
        with pytest.raises(DependencyDataError, match="schema version"):
            SQLiteBackend(path)

    def test_unreadable_database_rejected(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"SQLite format 3\x00" + b"\xff" * 64)
        with pytest.raises(DependencyDataError, match="cannot open|is closed|database"):
            SQLiteBackend(path)


class TestIngest:
    def test_duplicates_ignored(self, db):
        assert not db.add(RECORDS[0])
        assert len(db) == len(RECORDS)

    def test_add_many_counts_new(self, db):
        new = [RECORDS[0], HardwareDependency("S9", "Disk", "WD")]
        assert db.add_all(new) == 1

    def test_route_with_comma_in_hop_not_conflated(self, tmp_path):
        # JSON-array storage: one hop containing a comma is distinct
        # from two hops with the same flattened text.
        a = NetworkDependency("A", "B", ("x,y",))
        b = NetworkDependency("A", "B", ("x", "y"))
        with DepDB.sqlite(tmp_path / "d.sqlite") as db:
            assert db.add(a)
            assert db.add(b)
            assert db.counts()["network"] == 2
            assert a in db.records() and b in db.records()

    def test_batched_ingest_is_transactional(self, tmp_path):
        with DepDB.sqlite(tmp_path / "d.sqlite") as db:
            added = db.ingest(iter(RECORDS), batch_size=2)
            assert added == len(RECORDS)
            assert db.records() == RECORDS


class TestQueries:
    def test_records_order_contract(self, db):
        # network, then hardware, then software; insertion order within.
        assert db.records() == RECORDS

    def test_network_paths(self, db):
        assert len(db.network_paths("S1", "Internet")) == 2
        assert len(db.network_paths("S1")) == 3
        assert db.network_paths("S9") == []

    def test_network_destinations_order(self, db):
        assert db.network_destinations("S1") == ["Internet", "S2"]

    def test_hosts_include_destinations(self, db):
        assert db.hosts() == ["S1", "Internet", "S2"]

    def test_software_on_filter(self, db):
        assert [r.pgm for r in db.software_on("S1", programs=["Riak"])] == [
            "Riak"
        ]

    def test_counts(self, db):
        assert db.counts() == {"network": 3, "hardware": 1, "software": 2}


class TestSnapshots:
    def test_snapshot_is_content_addressed(self, db):
        first = db.snapshot("a")
        again = db.snapshot("b")
        assert first.digest == again.digest == db.content_hash()
        # Re-snapshotting an unchanged store updates in place.
        assert len(db.snapshots()) == 1
        assert db.last_snapshot().label == "b"
        assert again.seq > first.seq

    def test_snapshot_sequence_advances_on_change(self, db):
        first = db.snapshot()
        db.add(HardwareDependency("S9", "Disk", "WD"))
        second = db.snapshot()
        assert second.digest != first.digest
        assert second.seq == first.seq + 1
        assert [s.digest for s in db.snapshots()] == [
            first.digest,
            second.digest,
        ]


class TestLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        db = DepDB.sqlite(tmp_path / "d.sqlite")
        db.close()
        db.close()

    def test_closed_store_raises_clean_error(self, tmp_path):
        db = DepDB.sqlite(tmp_path / "d.sqlite", records=RECORDS)
        db.close()
        with pytest.raises(DependencyDataError, match="closed"):
            db.records()

    def test_pickle_rebuilds_as_memory_store(self, db):
        # Engine workers pickle job.depdb; sqlite connections cannot
        # cross process boundaries, so the clone is memory-backed with
        # identical records.
        clone = pickle.loads(pickle.dumps(db))
        assert clone.records() == db.records()
        assert clone.content_hash() == db.content_hash()
        clone.add(HardwareDependency("S9", "Disk", "WD"))  # writable
