"""Unit tests for the synthetic package-universe generator."""

import pytest

from repro.errors import DependencyDataError
from repro.swinventory import BASE_LIBRARIES, generate_universe


class TestGenerateUniverse:
    def test_requested_size(self):
        universe = generate_universe(packages=80, seed=0)
        assert len(universe) == 80

    def test_deterministic_for_seed(self):
        a = generate_universe(packages=60, seed=7)
        b = generate_universe(packages=60, seed=7)
        assert sorted(a.names()) == sorted(b.names())
        for name in a.names():
            assert a.get(name).depends == b.get(name).depends

    def test_different_seeds_differ(self):
        a = generate_universe(packages=60, seed=1)
        b = generate_universe(packages=60, seed=2)
        deps_a = {n: a.get(n).depends for n in a.names()}
        deps_b = {n: b.get(n).depends for n in b.names()}
        assert deps_a != deps_b

    def test_base_libraries_present(self):
        universe = generate_universe(packages=50, seed=0)
        for name, _version in BASE_LIBRARIES:
            assert name in universe

    def test_validates(self):
        generate_universe(packages=100, seed=3).validate()

    def test_acyclic_layering(self):
        universe = generate_universe(packages=100, layers=5, seed=4)
        # Layered construction forbids cycles: closure never contains self.
        for name in universe.names():
            assert name not in universe.closure(name)

    def test_base_libraries_are_popular(self):
        universe = generate_universe(packages=150, seed=5)
        libc_rdeps = len(universe.reverse_dependencies("libc6"))
        # libc6 should be depended on by a large share of the universe.
        assert libc_rdeps > len(universe) * 0.3

    def test_too_few_packages_rejected(self):
        with pytest.raises(DependencyDataError):
            generate_universe(packages=5)

    def test_too_few_layers_rejected(self):
        with pytest.raises(DependencyDataError):
            generate_universe(packages=50, layers=1)
