"""Unit tests for the Table-2 stack reconstruction (§6.2.3)."""

import pytest

from repro.errors import DependencyDataError
from repro.swinventory import (
    CLOUDS,
    PAPER_TABLE2_THREE_WAY,
    PAPER_TABLE2_TWO_WAY,
    REGION_SIZES,
    STACKS,
    all_stack_packages,
    expected_jaccard,
    software_records,
    stack_of,
    stack_packages,
    verify_against_paper,
)
from repro.swinventory.stacks import paper_rankings, region_census


class TestAssignments:
    def test_cloud_stack_mapping(self):
        assert stack_of("Cloud1") == "Riak"
        assert stack_of("Cloud2") == "MongoDB"
        assert stack_of("Cloud3") == "Redis"
        assert stack_of("Cloud4") == "CouchDB"

    def test_unknown_cloud(self):
        with pytest.raises(DependencyDataError):
            stack_of("Cloud9")

    def test_unknown_stack(self):
        with pytest.raises(DependencyDataError):
            stack_packages("Oracle")


class TestRegionConstruction:
    def test_set_sizes_follow_regions(self):
        packages = all_stack_packages()
        for index, cloud in enumerate(CLOUDS):
            expected = sum(
                size
                for region, size in REGION_SIZES.items()
                if index in region
            )
            assert len(packages[cloud]) == expected

    def test_universal_region_contains_base_libraries(self):
        shared = frozenset.intersection(*all_stack_packages().values())
        assert "libc6@2.19-18" in shared
        assert len(shared) == REGION_SIZES[(0, 1, 2, 3)]

    def test_every_stack_has_unique_packages(self):
        packages = all_stack_packages()
        for cloud in CLOUDS:
            others = frozenset().union(
                *(packages[c] for c in CLOUDS if c != cloud)
            )
            assert packages[cloud] - others

    def test_census_totals(self):
        census = region_census()
        assert census["universe"] == sum(REGION_SIZES.values())


class TestPaperAgreement:
    def test_verify_against_paper_passes(self):
        verify_against_paper(tolerance=0.01)

    def test_verify_tolerance_zero_fails(self):
        with pytest.raises(DependencyDataError):
            verify_against_paper(tolerance=0.0)

    @pytest.mark.parametrize("clouds,value", list(PAPER_TABLE2_TWO_WAY.items()))
    def test_two_way_jaccards_close(self, clouds, value):
        assert expected_jaccard(clouds) == pytest.approx(value, abs=0.01)

    @pytest.mark.parametrize(
        "clouds,value", list(PAPER_TABLE2_THREE_WAY.items())
    )
    def test_three_way_jaccards_close(self, clouds, value):
        assert expected_jaccard(clouds) == pytest.approx(value, abs=0.01)

    def test_rankings_match(self):
        two, three = paper_rankings()
        assert two[0] == ("Cloud2", "Cloud4")    # most independent pair
        assert two[-1] == ("Cloud1", "Cloud2")   # most correlated pair
        assert three[0] == ("Cloud2", "Cloud3", "Cloud4")


class TestSoftwareRecords:
    def test_one_record_per_cloud(self):
        records = software_records()
        assert len(records) == 4
        assert {r.pgm for r in records} == set(STACKS)

    def test_custom_hosts(self):
        records = software_records(hosts={"Cloud1": "node-a"})
        riak = next(r for r in records if r.pgm == "Riak")
        assert riak.hw == "node-a"

    def test_dependencies_match_stack_packages(self):
        records = software_records()
        riak = next(r for r in records if r.pgm == "Riak")
        assert frozenset(riak.dep) == stack_packages("Riak")
