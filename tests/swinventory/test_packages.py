"""Unit tests for the package model and dependency closure."""

import pytest

from repro.errors import DependencyDataError
from repro.swinventory import Package, PackageUniverse


class TestPackage:
    def test_identifier(self):
        assert Package("libc6", "2.19").identifier == "libc6@2.19"

    def test_empty_name_rejected(self):
        with pytest.raises(DependencyDataError):
            Package("", "1.0")

    def test_empty_version_rejected(self):
        with pytest.raises(DependencyDataError):
            Package("x", "")

    def test_self_dependency_rejected(self):
        with pytest.raises(DependencyDataError):
            Package("x", "1.0", depends=("x",))


class TestPackageUniverse:
    def make(self) -> PackageUniverse:
        return PackageUniverse(
            [
                Package("app", "1.0", depends=("liba", "libb")),
                Package("liba", "2.0", depends=("libc",)),
                Package("libb", "1.1", depends=("libc",)),
                Package("libc", "2.19"),
            ]
        )

    def test_closure_is_transitive(self):
        assert self.make().closure("app") == frozenset(
            {"liba", "libb", "libc"}
        )

    def test_closure_excludes_root(self):
        assert "app" not in self.make().closure("app")

    def test_leaf_closure_empty(self):
        assert self.make().closure("libc") == frozenset()

    def test_closure_identifiers(self):
        ids = self.make().closure_identifiers("liba")
        assert ids == frozenset({"libc@2.19"})

    def test_cycles_tolerated(self):
        universe = PackageUniverse(
            [
                Package("a", "1", depends=("b",)),
                Package("b", "1", depends=("a",)),
            ]
        )
        # a -> b -> a terminates; the cycle puts both in the closure.
        assert universe.closure("a") == frozenset({"a", "b"})

    def test_duplicate_package_rejected(self):
        universe = self.make()
        with pytest.raises(DependencyDataError):
            universe.add(Package("app", "9.9"))

    def test_unknown_package_rejected(self):
        with pytest.raises(DependencyDataError):
            self.make().closure("ghost")

    def test_validate_catches_dangling_deps(self):
        universe = PackageUniverse([Package("a", "1", depends=("ghost",))])
        with pytest.raises(DependencyDataError, match="unknown"):
            universe.validate()

    def test_reverse_dependencies_blast_radius(self):
        universe = self.make()
        assert universe.reverse_dependencies("libc") == frozenset(
            {"app", "liba", "libb"}
        )
        assert universe.reverse_dependencies("app") == frozenset()
