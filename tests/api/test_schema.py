"""Canonical schema: round trips, validation, content addressing."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.errors import SpecificationError

DEPDB = (
    '<src="S1" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S2" dst="Internet" route="ToR1,Core1"/>\n'
)


def request(**overrides) -> api.AuditRequest:
    fields = dict(servers=("S1", "S2"), depdb=DEPDB, seed=7)
    fields.update(overrides)
    return api.AuditRequest(**fields)


class TestEnvelope:
    def test_every_document_kind_carries_the_envelope(self):
        doc = api.envelope("audit_report", {"x": 1})
        assert doc["schema_version"] == api.SCHEMA_VERSION
        assert doc["kind"] == "audit_report"
        assert doc["x"] == 1

    def test_job_event_shape(self):
        event = api.job_event("started", seq=3, job_id="job-1")
        assert event["kind"] == "event"
        assert event["event"] == "started"
        assert event["seq"] == 3

    def test_error_body_shape(self):
        body = api.error_body("overloaded", "busy", tenant="t1")
        assert body["kind"] == "error"
        assert body["error"]["code"] == "overloaded"
        assert body["error"]["tenant"] == "t1"

    def test_canonical_json_is_byte_deterministic(self):
        doc = {"b": 1, "a": {"d": 2, "c": 3}}
        assert api.canonical_json(doc) == api.canonical_json(
            json.loads(json.dumps(doc))
        )
        assert " " not in api.canonical_json(doc)


class TestAuditRequestRoundTrip:
    def test_json_round_trip_is_identity(self):
        original = request(
            algorithm="sampling",
            rounds=5000,
            ranking="probability",
            top_n=4,
            probability=0.2,
            tenant="acme",
            metadata={"client": "alice"},
        )
        restored = api.AuditRequest.from_json(original.to_json())
        assert restored == original
        assert restored.to_json() == original.to_json()

    def test_envelope_fields_present(self):
        payload = request().to_dict()
        assert payload["kind"] == "audit_request"
        assert payload["schema_version"] == api.SCHEMA_VERSION

    def test_deployment_defaults_to_joined_servers(self):
        assert request().deployment == "S1 & S2"

    def test_rejects_wrong_schema_version(self):
        payload = request().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(SpecificationError, match="schema_version"):
            api.AuditRequest.from_dict(payload)

    @pytest.mark.parametrize("missing", ["servers", "depdb"])
    def test_rejects_missing_required_field(self, missing):
        payload = request().to_dict()
        del payload[missing]
        with pytest.raises(SpecificationError, match=missing):
            api.AuditRequest.from_dict(payload)

    @pytest.mark.parametrize(
        "field, bad",
        [
            ("rounds", "many"),
            ("seed", "zero"),
            ("metadata", []),
            ("tenant", 7),
            ("depdb", 3),
        ],
    )
    def test_rejects_wrong_types_with_field_name(self, field, bad):
        payload = request().to_dict()
        payload[field] = bad
        with pytest.raises(SpecificationError, match=field):
            api.AuditRequest.from_dict(payload)

    def test_rejects_bad_algorithm_and_ranking(self):
        with pytest.raises(SpecificationError, match="algorithm"):
            request(algorithm="magic")
        with pytest.raises(SpecificationError, match="ranking"):
            request(ranking="vibes")

    def test_rejects_empty_servers(self):
        with pytest.raises(SpecificationError, match="servers"):
            api.AuditRequest(servers=(), depdb=DEPDB)

    def test_from_json_rejects_non_object(self):
        with pytest.raises(SpecificationError):
            api.AuditRequest.from_json("[1, 2]")


class TestFingerprint:
    def test_stable_across_equal_requests(self):
        assert request().fingerprint() == request().fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 8},
            {"rounds": 9},
            {"depdb": DEPDB + '<src="S3" dst="I" route="T"/>\n'},
            {"servers": ("S1",)},
            {"ranking": "probability"},
        ],
    )
    def test_sensitive_to_output_shaping_fields(self, change):
        assert request().fingerprint() != request(**change).fingerprint()

    def test_insensitive_to_tenant_and_metadata(self):
        plain = request().fingerprint()
        assert request(tenant="acme").fingerprint() == plain
        assert request(metadata={"note": "x"}).fingerprint() == plain
        assert request(base="abc123").fingerprint() == plain

    def test_report_key_ignores_depdb_text_but_not_params(self):
        digest = "d" * 64
        same = api.report_key(digest, request())
        assert api.report_key(digest, request(depdb=DEPDB + "\n# x\n")) == same
        assert api.report_key(digest, request(rounds=9)) != same
        assert api.report_key("e" * 64, request()) != same


class TestAuditReportRoundTrip:
    def make_report(self) -> api.AuditReport:
        return api.AuditReport(
            title="t",
            deployments=[
                {"deployment": "S1 & S2", "score": 0.5, "sources": ["S1"]}
            ],
            ranking_method="size",
            client="alice",
            metadata={"report_key": "k"},
        )

    def test_round_trip_preserves_bytes(self):
        report = self.make_report()
        assert (
            api.AuditReport.from_json(report.to_json()).to_json()
            == report.to_json()
        )

    def test_pre_schema_dict_accepted_with_deprecation(self):
        legacy = {
            "title": "t",
            "deployments": [],
            "ranking_method": "size",
            "client": "",
            "metadata": {},
        }
        with pytest.warns(DeprecationWarning):
            report = api.AuditReport.from_dict(legacy)
        assert report.title == "t"

    def test_rejects_non_list_deployments(self):
        with pytest.raises(SpecificationError, match="deployments"):
            api.AuditReport.from_dict(
                {"schema_version": 1, "deployments": "nope"}
            )


class TestJobStatus:
    def test_round_trip(self):
        status = api.JobStatus(
            job_id="job-000001",
            state="running",
            tenant="acme",
            deployment="S1 & S2",
            queue_position=None,
            cached=False,
            events=4,
        )
        restored = api.JobStatus.from_json(status.to_json())
        assert restored == status

    def test_terminal_states(self):
        for state in api.JOB_STATES:
            status = api.JobStatus(job_id="j", state=state)
            assert status.is_terminal == (
                state in ("done", "failed", "cancelled")
            )

    def test_requires_job_id_and_state(self):
        with pytest.raises(SpecificationError, match="state"):
            api.JobStatus.from_dict({"schema_version": 1, "job_id": "j"})


_FIELDS = st.fixed_dictionaries(
    {},
    optional={
        "required": st.integers(min_value=1, max_value=2),
        "algorithm": st.sampled_from(["minimal", "sampling"]),
        "rounds": st.integers(min_value=1, max_value=10**6),
        "sample_probability": st.floats(
            min_value=0.01, max_value=0.99, allow_nan=False
        ),
        "ranking": st.sampled_from(["size", "probability"]),
        "top_n": st.one_of(st.none(), st.integers(1, 50)),
        "max_order": st.one_of(st.none(), st.integers(1, 10)),
        "seed": st.one_of(st.none(), st.integers(0, 2**31)),
        "probability": st.one_of(
            st.none(),
            st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
        ),
        "tenant": st.text(
            alphabet=st.characters(
                whitelist_categories=("L", "N"), max_codepoint=0x2FF
            ),
            min_size=1,
            max_size=12,
        ),
        "metadata": st.dictionaries(
            st.text(max_size=8), st.text(max_size=16), max_size=3
        ),
    },
)


class TestPropertyRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(fields=_FIELDS)
    def test_any_valid_request_survives_the_wire(self, fields):
        original = request(**fields)
        restored = api.AuditRequest.from_json(original.to_json())
        assert restored == original
        assert restored.fingerprint() == original.fingerprint()
        assert restored.to_json() == original.to_json()
