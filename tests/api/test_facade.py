"""The library front doors: repro.audit / audit_delta / plan."""

import json

import pytest

import repro
from repro import api
from repro.engine.incremental import DeltaAuditEngine
from repro.errors import SpecificationError

DEPDB = (
    '<src="S1" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S2" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S3" dst="Internet" route="ToR2,Core2"/>\n'
)


class TestAuditFrontDoor:
    def test_returns_canonical_report(self):
        report = repro.audit(DEPDB, ["S1", "S2"], seed=1)
        payload = report.to_dict()
        assert payload["kind"] == "audit_report"
        assert payload["schema_version"] == api.SCHEMA_VERSION
        assert payload["deployments"][0]["deployment"] == "S1 & S2"
        assert "structural_hash" in payload["metadata"]
        assert "report_key" in payload["metadata"]

    def test_repeat_audits_are_bit_identical(self):
        first = repro.audit(DEPDB, ["S1", "S3"], seed=9)
        second = repro.audit(DEPDB, ["S1", "S3"], seed=9)
        assert first.to_json() == second.to_json()

    def test_sampling_identical_for_any_worker_count(self):
        from repro.engine import AuditEngine

        inline = repro.audit(
            DEPDB, ["S1", "S2"], algorithm="sampling", rounds=2000, seed=3
        )
        fanned = repro.audit(
            DEPDB,
            ["S1", "S2"],
            algorithm="sampling",
            rounds=2000,
            seed=3,
            engine=AuditEngine(n_workers=2),
        )
        assert inline.to_json() == fanned.to_json()

    def test_accepts_depdb_object_and_path(self, tmp_path):
        from repro.depdb import DepDB

        path = tmp_path / "dep.txt"
        path.write_text(DEPDB)
        from_text = repro.audit(DEPDB, ["S1", "S2"], seed=2)
        from_object = repro.audit(DepDB.loads(DEPDB), ["S1", "S2"], seed=2)
        from_path = repro.audit(path, ["S1", "S2"], seed=2)
        # Same bytes in -> same bytes out.
        assert from_text.to_json() == from_path.to_json()
        # A DepDB object re-serialises to normalised dump text: the
        # request fingerprint differs, but the structural report key —
        # and the audit content — do not.
        assert from_object.deployments == from_text.deployments
        assert (
            from_object.metadata["report_key"]
            == from_text.metadata["report_key"]
        )

    def test_rejects_unknown_depdb_type(self):
        with pytest.raises(SpecificationError, match="depdb"):
            repro.audit(42, ["S1"])

    def test_delta_engine_serves_repeat_from_cache(self):
        engine = DeltaAuditEngine()
        request = api.AuditRequest(servers=("S1", "S2"), depdb=DEPDB, seed=4)
        cold = api.execute_request(request, engine=engine)
        warm = api.execute_request(request, engine=engine)
        assert not cold.engine_cache_hit
        assert warm.engine_cache_hit
        assert (
            api.report_for_request(request, cold.audit, cold.structural_hash)
            .to_json()
            == api.report_for_request(
                request, warm.audit, warm.structural_hash
            ).to_json()
        )


class TestExecuteRequest:
    def test_progress_callback_sees_compile_and_audit(self):
        stages = []
        api.execute_request(
            api.AuditRequest(servers=("S1",), depdb=DEPDB, seed=0),
            progress=lambda stage, **fields: stages.append((stage, fields)),
        )
        assert [s for s, _ in stages] == ["compiled", "audited"]
        assert "structural_hash" in stages[0][1]

    def test_base_graph_produces_delta_telemetry_only(self):
        request_a = api.AuditRequest(servers=("S1", "S2"), depdb=DEPDB, seed=0)
        request_b = api.AuditRequest(servers=("S1", "S3"), depdb=DEPDB, seed=0)
        base = api.execute_request(request_a)
        stages = {}
        with_delta = api.execute_request(
            request_b,
            progress=lambda stage, **fields: stages.setdefault(stage, fields),
            base_graph=base.graph,
        )
        assert "delta" in stages["compiled"]
        plain = api.execute_request(request_b)
        assert (
            api.report_for_request(
                request_b, with_delta.audit, with_delta.structural_hash
            ).to_json()
            == api.report_for_request(
                request_b, plain.audit, plain.structural_hash
            ).to_json()
        )


class TestMergeReports:
    def test_merge_matches_single_multi_deployment_ranking(self):
        singles = [
            repro.audit(DEPDB, servers, seed=0)
            for servers in (["S1", "S2"], ["S1", "S3"], ["S2", "S3"])
        ]
        merged = api.merge_reports(singles, title="merged")
        ranked = [d["deployment"] for d in merged.deployments]
        assert ranked[0] in ("S1 & S3", "S2 & S3")
        assert ranked[-1] == "S1 & S2"  # shared ToR1/Core1: least indep.
        assert merged.metadata["merged_from"] == 3

    def test_merge_rejects_mixed_ranking_methods(self):
        a = repro.audit(DEPDB, ["S1", "S2"], seed=0)
        b = repro.audit(DEPDB, ["S1", "S3"], seed=0, ranking="probability",
                        probability=0.1)
        with pytest.raises(SpecificationError, match="mixed"):
            api.merge_reports([a, b], title="broken")

    def test_merge_rejects_empty(self):
        with pytest.raises(SpecificationError):
            api.merge_reports([], title="empty")


class TestAuditDeltaFrontDoor:
    @pytest.fixture
    def spec_dir(self, tmp_path):
        (tmp_path / "net.depdb").write_text(DEPDB)
        for name, servers in (("web", ["S1", "S2"]), ("db", ["S1", "S3"])):
            (tmp_path / f"{name}.json").write_text(
                json.dumps(
                    {
                        "name": f"{name}-tier",
                        "depdb": "net.depdb",
                        "servers": servers,
                        "seed": 0,
                    }
                )
            )
        return tmp_path

    def test_first_run_then_noop_delta(self, spec_dir):
        engine = DeltaAuditEngine()
        cold = repro.audit_delta(None, str(spec_dir), engine=engine)
        warm = repro.audit_delta(str(spec_dir), str(spec_dir), engine=engine)
        assert cold.to_dict()["kind"] == "audit_report"
        assert sorted(warm.metadata["reused"]) == ["db-tier", "web-tier"]
        assert warm.metadata["delta"]["noop"] is True
        assert [d["deployment"] for d in cold.deployments] == [
            d["deployment"] for d in warm.deployments
        ]


class TestPlanFrontDoor:
    def test_plan_returns_enveloped_mitigation_plan(self):
        plan = repro.plan(DEPDB, ["S1", "S2"], probability=0.1, top_k=3)
        payload = plan.to_dict()
        assert payload["kind"] == "mitigation_plan"
        assert payload["schema_version"] == api.SCHEMA_VERSION
        assert payload["deployment"] == "S1 & S2"
        assert payload["plan"]


class TestCoreEnvelopes:
    def test_core_report_to_dict_is_enveloped(self):
        report = repro.audit(DEPDB, ["S1", "S2"], seed=0)
        assert report.to_dict()["kind"] == "audit_report"

    def test_pia_report_to_dict_is_enveloped(self):
        from repro.privacy.pia import PIAAuditor

        sets = {"P1": ["a", "b"], "P2": ["b", "c"], "P3": ["d"]}
        report = PIAAuditor(sets, protocol="plaintext").audit(ways=2)
        payload = report.to_dict()
        assert payload["kind"] == "pia_report"
        assert payload["schema_version"] == api.SCHEMA_VERSION
        assert payload["entries"]
