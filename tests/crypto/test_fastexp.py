"""Property-based parity tests for the fast exponentiation toolbox.

Every fastexp primitive must agree bit-for-bit with builtin ``pow`` —
the protocols' bit-identical-results contract rests on it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.fastexp import (
    batch_pow,
    chunked,
    digit_table,
    fixed_base_pow,
    multi_exp,
    pow_chunk,
    pow_pairs_chunk,
)
from repro.errors import CryptoError

moduli = st.integers(2, 1 << 96)
bases = st.integers(0, 1 << 96)
exponents = st.integers(0, 1 << 160)


class TestDigitTable:
    def test_small_table_values(self):
        table = digit_table(3, 1000)
        assert table[0] == 1
        assert table[1] == 3
        assert table[7] == pow(3, 7, 1000)
        assert len(table) == 256

    def test_base_reduced(self):
        assert digit_table(17, 5) == digit_table(17 % 5, 5)

    def test_bad_modulus(self):
        with pytest.raises(CryptoError):
            digit_table(3, 1)


class TestFixedBasePow:
    @settings(max_examples=80, deadline=None)
    @given(base=bases, exponent=exponents, modulus=moduli)
    def test_matches_builtin_pow(self, base, exponent, modulus):
        table = digit_table(base, modulus)
        assert fixed_base_pow(table, exponent, modulus) == pow(
            base, exponent, modulus
        )

    def test_table_reuse_across_exponents(self):
        """One table, many exponents — the party-dataset reuse shape."""
        modulus = (1 << 89) - 1
        table = digit_table(0xDEADBEEF, modulus)
        for exponent in (0, 1, 255, 256, 1 << 64, (1 << 80) + 12345):
            assert fixed_base_pow(table, exponent, modulus) == pow(
                0xDEADBEEF, exponent, modulus
            )


class TestMultiExp:
    @settings(max_examples=80, deadline=None)
    @given(
        pairs=st.lists(st.tuples(bases, exponents), min_size=0, max_size=6),
        modulus=moduli,
    )
    def test_matches_pow_product(self, pairs, modulus):
        tables = [digit_table(b, modulus) for b, _ in pairs]
        exps = [e for _, e in pairs]
        expected = 1
        for b, e in pairs:
            expected = expected * pow(b, e, modulus) % modulus
        if not pairs:
            expected = 1 % modulus
        assert multi_exp(tables, exps, modulus) == expected

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CryptoError):
            multi_exp([digit_table(2, 97)], [1, 2], 97)

    def test_negative_exponent_rejected(self):
        with pytest.raises(CryptoError):
            multi_exp([digit_table(2, 97)], [-1], 97)


class TestBatchPow:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(bases, min_size=0, max_size=12),
        exponent=exponents,
        modulus=moduli,
    )
    def test_matches_builtin_pow(self, values, exponent, modulus):
        expected = [pow(v, exponent, modulus) for v in values]
        assert batch_pow(values, exponent, modulus) == expected
        assert batch_pow(values, exponent, modulus, dedupe=False) == expected

    def test_duplicates_share_work(self):
        values = [5, 7, 5, 5, 7]
        assert batch_pow(values, 1000003, 1 << 61) == [
            pow(v, 1000003, 1 << 61) for v in values
        ]

    def test_negative_exponent_rejected(self):
        with pytest.raises(CryptoError):
            batch_pow([2], -3, 97)


class TestChunkKernels:
    def test_pow_chunk(self):
        assert pow_chunk([2, 3], 10, 1000) == [24, 49]

    def test_pow_pairs_chunk(self):
        assert pow_pairs_chunk([(2, 10), (3, 2)], 1000) == [24, 9]

    def test_pow_pairs_negative_exponent_inverts(self):
        # KS key shares can be negative; pow inverts modularly.
        assert pow_pairs_chunk([(3, -1)], 97) == [pow(3, -1, 97)]

    def test_chunked_fixed_sizes(self):
        assert chunked(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert chunked([], 3) == []
        with pytest.raises(CryptoError):
            chunked([1], 0)
