"""Unit tests for prime generation and testing."""

import random

import pytest

from repro.crypto import (
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
    safe_prime,
)
from repro.crypto.primes import WELL_KNOWN_SAFE_PRIMES
from repro.errors import CryptoError


class TestMillerRabin:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 7919, 104729, 2**31 - 1])
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize(
        "n", [0, 1, 4, 100, 7917, 2**31 - 3, 561, 41041, 825265]
    )
    def test_known_composites_and_carmichael(self, n):
        assert not is_probable_prime(n)

    def test_large_known_prime(self):
        # 2^127 - 1, Mersenne prime.
        assert is_probable_prime(2**127 - 1)


class TestGeneration:
    def test_generate_prime_bit_length(self):
        rng = random.Random(0)
        p = generate_prime(64, rng)
        assert p.bit_length() == 64
        assert is_probable_prime(p)

    def test_generate_prime_deterministic(self):
        assert generate_prime(48, random.Random(1)) == generate_prime(
            48, random.Random(1)
        )

    def test_too_small_rejected(self):
        with pytest.raises(CryptoError):
            generate_prime(4)

    def test_generate_safe_prime(self):
        p = generate_safe_prime(40, random.Random(2))
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)

    def test_generate_safe_prime_large_refused(self):
        with pytest.raises(CryptoError, match="impractical"):
            generate_safe_prime(1024)


class TestWellKnown:
    @pytest.mark.parametrize("bits", sorted(WELL_KNOWN_SAFE_PRIMES))
    def test_published_moduli_are_safe_primes(self, bits):
        p = WELL_KNOWN_SAFE_PRIMES[bits]
        assert p.bit_length() == bits
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)

    def test_safe_prime_dispatch(self):
        assert safe_prime(1024) == WELL_KNOWN_SAFE_PRIMES[1024]
        small = safe_prime(48, random.Random(3))
        assert is_probable_prime(small)
