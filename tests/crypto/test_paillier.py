"""Unit tests for Paillier homomorphic encryption."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import generate_keypair
from repro.crypto.paillier import PaillierPrivateKey
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=256, seed=0)


class TestKeypair:
    def test_modulus_size(self, keypair):
        public, _ = keypair
        assert 250 <= public.n.bit_length() <= 258

    def test_deterministic_for_seed(self):
        a_pub, _ = generate_keypair(bits=128, seed=5)
        b_pub, _ = generate_keypair(bits=128, seed=5)
        assert a_pub.n == b_pub.n

    def test_too_small_rejected(self):
        with pytest.raises(CryptoError):
            generate_keypair(bits=32)

    def test_ciphertext_bytes(self, keypair):
        public, _ = keypair
        assert public.ciphertext_bytes == (public.nsq.bit_length() + 7) // 8


class TestEncryptDecrypt:
    def test_round_trip(self, keypair):
        public, private = keypair
        for message in (0, 1, 42, 10**9):
            assert private.decrypt(public.encrypt(message)) == message

    def test_messages_reduced_mod_n(self, keypair):
        public, private = keypair
        assert private.decrypt(public.encrypt(public.n + 5)) == 5

    def test_randomised_ciphertexts(self, keypair):
        public, _ = keypair
        rng = random.Random(1)
        assert public.encrypt(7, rng) != public.encrypt(7, rng)

    def test_invalid_ciphertext_rejected(self, keypair):
        _, private = keypair
        with pytest.raises(CryptoError):
            private.decrypt(0)


class TestHomomorphisms:
    def test_addition(self, keypair):
        public, private = keypair
        c = public.add(public.encrypt(20), public.encrypt(22))
        assert private.decrypt(c) == 42

    def test_add_plain(self, keypair):
        public, private = keypair
        c = public.add_plain(public.encrypt(40), 2)
        assert private.decrypt(c) == 42

    def test_multiply_plain(self, keypair):
        public, private = keypair
        c = public.multiply_plain(public.encrypt(21), 2)
        assert private.decrypt(c) == 42

    def test_encrypt_zero_rerandomises(self, keypair):
        public, private = keypair
        c = public.add(public.encrypt(42), public.encrypt_zero())
        assert private.decrypt(c) == 42

    def test_horner_style_evaluation(self, keypair):
        """The exact operation KS performs: evaluate an encrypted
        polynomial at a plaintext point."""
        public, private = keypair
        coeffs = [3, 0, 2]  # 3 + 2x^2
        x = 7
        encrypted = [public.encrypt(c) for c in coeffs]
        acc = encrypted[-1]
        for coeff in reversed(encrypted[:-1]):
            acc = public.add(public.multiply_plain(acc, x), coeff)
        assert private.decrypt(acc) == 3 + 2 * 49


class TestCRTDecryption:
    def test_keypair_carries_factors(self, keypair):
        public, private = keypair
        assert private.p is not None and private.q is not None
        assert private.p * private.q == public.n

    @settings(max_examples=60, deadline=None)
    @given(message=st.integers(0, (1 << 256) - 1), noise_seed=st.integers())
    def test_crt_matches_plain_path(self, keypair, message, noise_seed):
        """CRT and single-exponentiation decryption are bit-identical."""
        public, private = keypair
        plain_key = PaillierPrivateKey(
            public=public, lam=private.lam, mu=private.mu
        )
        ciphertext = public.encrypt(message, random.Random(noise_seed))
        assert private.decrypt(ciphertext) == plain_key.decrypt(ciphertext)

    def test_plain_path_still_round_trips(self, keypair):
        public, private = keypair
        plain_key = PaillierPrivateKey(
            public=public, lam=private.lam, mu=private.mu
        )
        assert plain_key.decrypt(public.encrypt(424242)) == 424242


class TestBatchedEncryptionSplit:
    def test_draw_noise_plus_raw_encrypt_matches_encrypt(self, keypair):
        """The staged hot path reproduces the one-shot transcript."""
        public, _ = keypair
        staged_rng, direct_rng = random.Random(9), random.Random(9)
        for message in (0, 1, 123456789, public.n - 1):
            r = public.draw_noise(staged_rng)
            staged = public.raw_encrypt(message, pow(r, public.n, public.nsq))
            assert staged == public.encrypt(message, direct_rng)

    def test_fallback_rng_is_reproducible(self, keypair, monkeypatch):
        """rng=None draws from one seeded process-wide stream, not a
        fresh OS-seeded Random per call."""
        from repro.crypto import paillier as paillier_module

        public, private = keypair
        monkeypatch.setattr(
            paillier_module, "_FALLBACK_RNG", random.Random(77)
        )
        first = public.encrypt(5)
        monkeypatch.setattr(
            paillier_module, "_FALLBACK_RNG", random.Random(77)
        )
        assert public.encrypt(5) == first
        assert private.decrypt(first) == 5
