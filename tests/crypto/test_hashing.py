"""Unit tests for hash families and digests."""

import pytest

from repro.crypto import HashFamily, element_digest
from repro.errors import CryptoError


class TestHashFamily:
    def test_deterministic(self):
        family = HashFamily(size=4, seed=1)
        assert family(0, "libc6") == family(0, "libc6")

    def test_members_independent(self):
        family = HashFamily(size=8, seed=1)
        values = {family(i, "libc6") for i in range(8)}
        assert len(values) == 8

    def test_seeds_change_family(self):
        assert HashFamily(4, seed=1)(0, "x") != HashFamily(4, seed=2)(0, "x")

    def test_64_bit_range(self):
        family = HashFamily(size=2, seed=0)
        value = family(0, "element")
        assert 0 <= value < 2**64

    def test_index_bounds(self):
        family = HashFamily(size=2, seed=0)
        with pytest.raises(CryptoError):
            family(2, "x")
        with pytest.raises(CryptoError):
            family(-1, "x")

    def test_functions_list(self):
        family = HashFamily(size=3, seed=0)
        funcs = family.functions()
        assert len(funcs) == 3
        assert funcs[1]("e") == family(1, "e")

    def test_min_element(self):
        family = HashFamily(size=1, seed=0)
        pool = ["a", "b", "c", "d"]
        winner = family.min_element(0, pool)
        assert winner == min(pool, key=lambda e: (family(0, e), e))

    def test_min_element_empty_rejected(self):
        with pytest.raises(CryptoError):
            HashFamily(1).min_element(0, [])

    def test_invalid_size(self):
        with pytest.raises(CryptoError):
            HashFamily(size=0)


class TestElementDigest:
    def test_stable(self):
        assert element_digest("x") == element_digest("x")

    def test_length(self):
        assert len(element_digest("x", length=8)) == 8

    def test_invalid_length(self):
        with pytest.raises(CryptoError):
            element_digest("x", length=0)
        with pytest.raises(CryptoError):
            element_digest("x", length=64)
