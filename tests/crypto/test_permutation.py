"""Unit tests for seeded permutations."""

import pytest

from repro.crypto import Permuter, invert_permutation, random_permutation
from repro.errors import CryptoError


class TestPermuter:
    def test_shuffle_preserves_multiset(self):
        permuter = Permuter(seed=0)
        items = [1, 2, 2, 3, 4]
        shuffled = permuter.shuffle(items)
        assert sorted(shuffled) == sorted(items)

    def test_input_not_mutated(self):
        items = [1, 2, 3]
        Permuter(seed=0).shuffle(items)
        assert items == [1, 2, 3]

    def test_deterministic_for_seed(self):
        assert Permuter(seed=3).shuffle(range(20)) == Permuter(seed=3).shuffle(
            range(20)
        )

    def test_permutation_is_bijection(self):
        perm = Permuter(seed=1).permutation(50)
        assert sorted(perm) == list(range(50))

    def test_negative_length_rejected(self):
        with pytest.raises(CryptoError):
            Permuter(seed=0).permutation(-1)


class TestInvert:
    def test_round_trip(self):
        perm = random_permutation(30, seed=2)
        inverse = invert_permutation(perm)
        for i, target in enumerate(perm):
            assert inverse[target] == i

    def test_identity(self):
        assert invert_permutation([0, 1, 2]) == [0, 1, 2]

    def test_non_permutation_rejected(self):
        with pytest.raises(CryptoError):
            invert_permutation([0, 0, 1])
        with pytest.raises(CryptoError):
            invert_permutation([0, 5])
