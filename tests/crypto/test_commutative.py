"""Unit tests for commutative (Pohlig–Hellman/SRA) encryption."""

import pytest

from repro.crypto import CommutativeKey, SharedGroup, hash_to_group
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def group() -> SharedGroup:
    return SharedGroup.with_bits(768)


@pytest.fixture(scope="module")
def keys(group):
    return CommutativeKey(group, seed=1), CommutativeKey(group, seed=2)


class TestSharedGroup:
    def test_non_prime_rejected(self):
        with pytest.raises(CryptoError):
            SharedGroup(prime=100)

    def test_non_safe_prime_rejected(self):
        # 13 is prime but (13-1)/2 = 6 is not.
        with pytest.raises(CryptoError):
            SharedGroup(prime=13)

    def test_element_bytes(self, group):
        assert group.element_bytes == 96  # 768 bits

    def test_with_bits_cached_per_size(self, group):
        """Repeated audits reuse the vetted group: no fresh Miller–Rabin."""
        assert SharedGroup.with_bits(768) is SharedGroup.with_bits(768)

    def test_same_prime_groups_compare_equal(self, group):
        assert SharedGroup(prime=group.prime) == group


class TestHashToGroup:
    def test_deterministic(self, group):
        assert hash_to_group("libc6", group) == hash_to_group("libc6", group)

    def test_distinct_elements_differ(self, group):
        assert hash_to_group("libc6", group) != hash_to_group("libssl", group)

    def test_result_is_quadratic_residue(self, group):
        value = hash_to_group("anything", group)
        # Euler's criterion: v^((p-1)/2) == 1 for QRs.
        assert pow(value, (group.prime - 1) // 2, group.prime) == 1

    def test_empty_element_rejected(self, group):
        with pytest.raises(CryptoError):
            hash_to_group("", group)


class TestCommutativeKey:
    def test_round_trip(self, group, keys):
        a, _ = keys
        m = hash_to_group("element", group)
        assert a.decrypt(a.encrypt(m)) == m

    def test_commutativity(self, group, keys):
        a, b = keys
        m = hash_to_group("element", group)
        assert a.encrypt(b.encrypt(m)) == b.encrypt(a.encrypt(m))

    def test_nested_decrypt_any_order(self, group, keys):
        a, b = keys
        m = hash_to_group("element", group)
        double = a.encrypt(b.encrypt(m))
        assert a.decrypt(b.decrypt(double)) == m
        assert b.decrypt(a.decrypt(double)) == m

    def test_equal_plaintexts_equal_ciphertexts(self, group, keys):
        """The property P-SOP relies on: deterministic matching."""
        a, b = keys
        m = hash_to_group("libc6@2.19", group)
        assert a.encrypt(b.encrypt(m)) == b.encrypt(a.encrypt(m))

    def test_different_keys_different_ciphertexts(self, group, keys):
        a, b = keys
        m = hash_to_group("element", group)
        assert a.encrypt(m) != b.encrypt(m)

    def test_out_of_range_rejected(self, group, keys):
        a, _ = keys
        with pytest.raises(CryptoError):
            a.encrypt(0)
        with pytest.raises(CryptoError):
            a.decrypt(group.prime)

    def test_encrypt_many(self, group, keys):
        a, _ = keys
        values = [hash_to_group(f"e{i}", group) for i in range(5)]
        assert a.encrypt_many(values) == [a.encrypt(v) for v in values]

    def test_deterministic_key_for_seed(self, group):
        k1 = CommutativeKey(group, seed=42)
        k2 = CommutativeKey(group, seed=42)
        m = hash_to_group("x", group)
        assert k1.encrypt(m) == k2.encrypt(m)

    def test_exponent_composition(self, group, keys):
        """The ring-collapse identity the fast path relies on:
        (m^a)^b = m^(a*b mod q) on the QR subgroup."""
        a, b = keys
        m = hash_to_group("element", group)
        composed = a.exponent * b.exponent % group.subgroup_order
        assert pow(m, composed, group.prime) == a.encrypt(b.encrypt(m))
