"""Tests for the ``indaas plan`` CLI subcommand."""

import json

import pytest

from repro.cli import main

DEPDB = (
    '<src="S1" dst="Internet" route="tor1,agg1,core1"/>\n'
    '<src="S2" dst="Internet" route="tor2,agg1,core2"/>\n'
)


@pytest.fixture
def depdb_file(tmp_path):
    path = tmp_path / "db.txt"
    path.write_text(DEPDB)
    return str(path)


class TestPlanCommand:
    def test_text_plan(self, depdb_file, capsys):
        code = main(
            ["plan", depdb_file, "--servers", "S1,S2", "--budget", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mitigation plan" in out
        # The shared aggregation switch is the obvious first fix.
        assert "device:agg1" in out
        assert "1." in out

    def test_json_plan(self, depdb_file, capsys):
        code = main(["plan", depdb_file, "--servers", "S1,S2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"][0]["mitigation"]["component"] == "device:agg1"
        assert payload["baseline_probability"] > 0

    def test_method_and_top_k(self, depdb_file, capsys):
        reference = None
        for method in ("mocus", "bdd", "auto"):
            code = main(
                [
                    "plan",
                    depdb_file,
                    "--servers",
                    "S1,S2",
                    "--method",
                    method,
                    "--top-k",
                    "3",
                    "--json",
                ]
            )
            assert code == 0
            payload = capsys.readouterr().out
            if reference is None:
                reference = payload
            else:
                assert payload == reference

    def test_missing_servers_rejected(self, depdb_file, capsys):
        code = main(["plan", depdb_file, "--servers", " , "])
        assert code == 1
        assert "error" in capsys.readouterr().err
