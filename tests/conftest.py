"""Shared fixtures: the paper's worked examples as reusable graphs."""

from __future__ import annotations

import pytest

from repro import ComponentSets, FaultGraph, FaultSets, GateType


@pytest.fixture
def figure_4a() -> FaultGraph:
    """Figure 4(a): E1 = {A1, A2}, E2 = {A2, A3}, AND-of-ORs."""
    sets = ComponentSets.from_mapping({"E1": ["A1", "A2"], "E2": ["A2", "A3"]})
    return sets.to_fault_graph("figure-4a")


@pytest.fixture
def figure_4b() -> FaultGraph:
    """Figure 4(b): the weighted variant (0.1 / 0.2 / 0.3)."""
    sets = FaultSets.from_mapping(
        {"E1": {"A1": 0.1, "A2": 0.2}, "E2": {"A2": 0.2, "A3": 0.3}}
    )
    return sets.to_fault_graph("figure-4b")


@pytest.fixture
def figure_4b_probs() -> dict[str, float]:
    return {"A1": 0.1, "A2": 0.2, "A3": 0.3}


@pytest.fixture
def deep_graph() -> FaultGraph:
    """A 3-level graph with internal redundancy and shared leaves.

    top = AND(S1, S2); S1 = OR(net1, libc6); S2 = OR(net2, libc6);
    net1 = AND(tor1, shared-core); net2 = AND(tor2, shared-core).
    Minimal RGs: {libc6}, {tor1, tor2}, {tor1, core}... see tests.
    """
    g = FaultGraph("deep")
    for leaf in ("tor1", "tor2", "core", "libc6"):
        g.add_basic_event(leaf)
    g.add_gate("net1", GateType.AND, ["tor1", "core"])
    g.add_gate("net2", GateType.AND, ["tor2", "core"])
    g.add_gate("S1", GateType.OR, ["net1", "libc6"])
    g.add_gate("S2", GateType.OR, ["net2", "libc6"])
    g.add_gate("top", GateType.AND, ["S1", "S2"], top=True)
    return g
