"""Integration tests: the three §6.2 case studies reproduce the paper."""

import pytest

from repro.analysis import (
    hardware_case_study,
    network_case_study,
    software_case_study,
)


@pytest.fixture(scope="module")
def network_result():
    # 20k rounds suffice for the tiny per-pair graphs; the paper used 1e6.
    return network_case_study(sampling_rounds=20_000)


@pytest.fixture(scope="module")
def hardware_result():
    return hardware_case_study()


class TestNetworkCaseStudy:
    def test_190_candidate_deployments(self, network_result):
        assert network_result.formal.total == 190

    def test_27_safe_deployments(self, network_result):
        assert len(network_result.formal.safe) == 27

    def test_random_pick_safety_is_14_percent(self, network_result):
        assert network_result.formal.safe_fraction == pytest.approx(
            27 / 190, abs=1e-9
        )

    def test_best_pair_is_rack5_rack29(self, network_result):
        assert network_result.best_deployment == "Rack5 & Rack29"

    def test_formal_probability_confirms_best(self, network_result):
        best = network_result.formal.lowest_failure_probability()
        assert best.name == "Rack5 & Rack29"
        assert best.is_safe

    def test_matches_paper_flag(self, network_result):
        assert network_result.matches_paper


class TestHardwareCaseStudy:
    def test_riak_vms_colocated_on_server2(self, hardware_result):
        assert hardware_result.placements["VM7"] == "Server2"
        assert hardware_result.placements["VM8"] == "Server2"

    def test_top_rgs_match_paper(self, hardware_result):
        assert set(hardware_result.measured_top_rgs) == set(
            hardware_result.paper_top_rgs
        )

    def test_server2_is_a_singleton_rg(self, hardware_result):
        singletons = [
            e.events
            for e in hardware_result.riak_audit.ranking
            if e.size == 1
        ]
        assert frozenset({"hw:Server2"}) in singletons

    def test_recommendation_is_server2_server3(self, hardware_result):
        assert hardware_result.recommended_pair == "Server2 & Server3"

    def test_only_one_safe_pair(self, hardware_result):
        safe = hardware_result.redeployment_report
        assert [
            a.deployment for a in safe.deployments_without_unexpected_rgs()
        ] == ["Server2 & Server3"]

    def test_matches_paper_flag(self, hardware_result):
        assert hardware_result.matches_paper


class TestSoftwareCaseStudy:
    def test_plaintext_reference_rankings(self):
        two_way, three_way = software_case_study(protocol="plaintext")
        assert two_way.entries[0].deployment == ("Cloud2", "Cloud4")
        assert two_way.entries[-1].deployment == ("Cloud1", "Cloud2")
        assert three_way.entries[0].deployment == (
            "Cloud2",
            "Cloud3",
            "Cloud4",
        )
        assert len(two_way.entries) == 6
        assert len(three_way.entries) == 4

    def test_jaccard_values_close_to_table_2(self):
        from repro.swinventory import PAPER_TABLE2_TWO_WAY

        two_way, _ = software_case_study(protocol="plaintext")
        for entry in two_way.entries:
            paper = PAPER_TABLE2_TWO_WAY[tuple(entry.deployment)]
            assert entry.jaccard == pytest.approx(paper, abs=0.01)
