"""Unit tests for the mitigation planner."""

import json

import pytest

from repro import ComponentSets
from repro.analysis.planner import MitigationPlan, MitigationPlanner
from repro.analysis.whatif import Duplicate, Harden
from repro.core.audit import SIAAuditor
from repro.core.spec import AuditSpec
from repro.depdb import DepDB
from repro.depdb.records import HardwareDependency
from repro.engine import AuditEngine
from repro.errors import AnalysisError
from repro.failures import uniform_weigher


@pytest.fixture
def weighted_graph():
    """Two servers behind one shared aggregation switch, varied weights."""
    sets = ComponentSets.from_mapping(
        {"S1": ["tor1", "shared-agg"], "S2": ["tor2", "shared-agg"]}
    )
    graph = sets.to_fault_graph("web & db")
    weights = {"tor1": 0.02, "tor2": 0.03, "shared-agg": 0.1}
    return graph.map_probabilities(lambda e: weights.get(e.name))


class TestCandidates:
    def test_harden_and_duplicate_per_component(self, weighted_graph):
        planner = MitigationPlanner(weighted_graph)
        candidates = planner.candidates(top_k=2)
        assert len(candidates) == 4
        kinds = [(type(c), c.component) for c in candidates]
        # The shared switch dominates the importance ranking.
        assert kinds[0] == (Harden, "shared-agg")
        assert kinds[1] == (Duplicate, "shared-agg")

    def test_harden_factor_scales_probability(self, weighted_graph):
        planner = MitigationPlanner(weighted_graph)
        harden = planner.candidates(top_k=1, harden_factor=0.5)[0]
        assert harden.probability == pytest.approx(0.05)

    def test_zero_probability_components_skipped(self, weighted_graph):
        zeroed = weighted_graph.map_probabilities(lambda e: 0.0)
        with pytest.raises(AnalysisError, match="no viable"):
            MitigationPlanner(zeroed).candidates(top_k=2)

    def test_zero_probability_leader_does_not_consume_a_slot(
        self, weighted_graph
    ):
        """A p=0 component can still rank first on Birnbaum; viable
        components below it must fill the top_k slots."""
        hardened = weighted_graph.map_probabilities(
            lambda e: 0.0 if e.name == "shared-agg" else e.probability
        )
        candidates = MitigationPlanner(hardened).candidates(top_k=1)
        assert len(candidates) == 2
        assert candidates[0].component != "shared-agg"

    def test_adversarial_graph_raises_through_engine_path(self):
        """The node-budget valve must also cover engine-cached compiles."""
        from repro import FaultGraph, GateType
        from repro.core.minimal_rg import CutSetExplosion
        from repro.engine.cache import DEFAULT_BDD_NODE_BUDGET, GraphCache

        # Every engine cache carries the valve by default.
        assert AuditEngine().cache.bdd_node_budget == DEFAULT_BDD_NODE_BUDGET

        n = 16
        g = FaultGraph("adversarial")
        lefts = [g.add_basic_event(f"a{i}", probability=0.1) for i in range(n)]
        rights = [
            g.add_basic_event(f"b{i}", probability=0.1) for i in range(n)
        ]
        branches = [
            g.add_gate(f"or{i}", GateType.OR, [lefts[i], rights[i]])
            for i in range(n)
        ]
        g.add_gate("top", GateType.AND, branches, top=True)
        # A tiny budget keeps the test fast; the default (2M nodes) is
        # the same valve, just with production headroom.
        engine = AuditEngine(cache=GraphCache(bdd_node_budget=500))
        with pytest.raises(CutSetExplosion):
            MitigationPlanner(g, engine=engine).plan()

    def test_bad_parameters_rejected(self, weighted_graph):
        planner = MitigationPlanner(weighted_graph)
        with pytest.raises(AnalysisError):
            planner.candidates(top_k=0)
        with pytest.raises(AnalysisError):
            planner.candidates(top_k=1, harden_factor=1.5)
        with pytest.raises(AnalysisError):
            MitigationPlanner(weighted_graph, method="magic")


class TestPlan:
    def test_ranked_best_first(self, weighted_graph):
        plan = MitigationPlanner(weighted_graph).plan(top_k=3)
        assert isinstance(plan, MitigationPlan)
        probabilities = [o.probability_after for o in plan.outcomes]
        assert probabilities == sorted(probabilities)
        assert plan.outcomes[0].mitigation.component == "shared-agg"
        assert plan.considered == 6

    def test_budget_trims(self, weighted_graph):
        plan = MitigationPlanner(weighted_graph).plan(top_k=3, budget=2)
        assert len(plan.outcomes) == 2
        assert plan.budget == 2
        full = MitigationPlanner(weighted_graph).plan(top_k=3)
        assert [o.mitigation for o in plan.outcomes] == [
            o.mitigation for o in full.outcomes[:2]
        ]

    def test_bad_budget_rejected(self, weighted_graph):
        with pytest.raises(AnalysisError, match="budget"):
            MitigationPlanner(weighted_graph).plan(budget=0)

    def test_unweighted_graph_rejected(self):
        sets = ComponentSets.from_mapping({"S1": ["a"], "S2": ["b"]})
        with pytest.raises(Exception):
            MitigationPlanner(sets.to_fault_graph())

    def test_render_text_and_dict(self, weighted_graph):
        plan = MitigationPlanner(weighted_graph).plan(top_k=2, budget=3)
        text = plan.render_text()
        assert "mitigation plan" in text
        assert "baseline" in text
        assert "1." in text
        payload = plan.to_dict()
        assert payload["considered"] == 4
        assert payload["plan"][0]["rank"] == 1
        assert payload["plan"][0]["mitigation"]["component"] == "shared-agg"
        json.dumps(payload)  # JSON-serialisable end to end

    def test_method_invariant(self, weighted_graph):
        reference = MitigationPlanner(
            weighted_graph, method="mocus"
        ).plan(top_k=2)
        for method in ("auto", "bdd"):
            plan = MitigationPlanner(weighted_graph, method=method).plan(
                top_k=2
            )
            assert (
                plan.to_dict()["plan"] == reference.to_dict()["plan"]
            )

    def test_worker_invariance(self, weighted_graph):
        """The determinism contract: identical plans for any worker count."""
        serial = MitigationPlanner(weighted_graph).plan(top_k=3)
        for workers in (1, 2):
            engine = AuditEngine(n_workers=workers)
            parallel = MitigationPlanner(
                weighted_graph, engine=engine
            ).plan(top_k=3)
            assert json.dumps(parallel.to_dict()) == json.dumps(
                serial.to_dict()
            )


class TestAuditorWiring:
    @staticmethod
    def depdb():
        sets = {
            "S1": ["tor1", "shared-agg"],
            "S2": ["tor2", "shared-agg"],
        }
        return DepDB(
            HardwareDependency(hw=server, type="component", dep=component)
            for server, components in sets.items()
            for component in components
        )

    def test_mitigation_plan_through_auditor(self):
        auditor = SIAAuditor(self.depdb(), weigher=uniform_weigher(0.1))
        spec = AuditSpec(deployment="web & db", servers=("S1", "S2"))
        plan = auditor.mitigation_plan(spec, top_k=2, budget=3)
        assert plan.deployment == "web & db"
        assert len(plan.outcomes) == 3
        # The builder prefixes hardware components with their record kind.
        assert plan.outcomes[0].mitigation.component == "hw:shared-agg"

    def test_weigher_required(self):
        auditor = SIAAuditor(self.depdb())
        spec = AuditSpec(deployment="web & db", servers=("S1", "S2"))
        with pytest.raises(AnalysisError, match="weigher"):
            auditor.mitigation_plan(spec)
