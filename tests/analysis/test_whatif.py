"""Unit tests for what-if mitigation analysis."""

import pytest

from repro import ComponentSets, minimal_risk_groups
from repro.analysis.whatif import Duplicate, Harden, evaluate_mitigations
from repro.core.bdd import compile_graph
from repro.errors import AnalysisError


@pytest.fixture
def weighted_graph():
    """Two sources sharing one switch; everything fails with p=0.1."""
    sets = ComponentSets.from_mapping(
        {"S1": ["tor1", "shared-agg"], "S2": ["tor2", "shared-agg"]}
    )
    return sets.to_fault_graph().map_probabilities(lambda e: 0.1)


class TestHarden:
    def test_reduces_probability(self, weighted_graph):
        mitigated = Harden("shared-agg", 0.01).apply(weighted_graph)
        assert mitigated.probability_of("shared-agg") == 0.01
        # Input untouched.
        assert weighted_graph.probability_of("shared-agg") == 0.1

    def test_cannot_raise_probability(self, weighted_graph):
        with pytest.raises(AnalysisError, match="must not raise"):
            Harden("shared-agg", 0.5).apply(weighted_graph)

    def test_unknown_component(self, weighted_graph):
        with pytest.raises(AnalysisError):
            Harden("ghost", 0.01).apply(weighted_graph)

    def test_gate_rejected(self, weighted_graph):
        with pytest.raises(AnalysisError, match="gate"):
            Harden("S1", 0.01).apply(weighted_graph)


class TestDuplicate:
    def test_removes_singleton_risk_group(self, weighted_graph):
        before = minimal_risk_groups(weighted_graph)
        assert frozenset({"shared-agg"}) in before
        mitigated = Duplicate("shared-agg").apply(weighted_graph)
        after = minimal_risk_groups(mitigated)
        assert frozenset({"shared-agg"}) not in after
        assert frozenset(
            {"shared-agg#primary", "shared-agg#replica"}
        ) in after

    def test_probability_drops(self, weighted_graph):
        probs_before = weighted_graph.probabilities()
        before = compile_graph(weighted_graph).probability(probs_before)
        mitigated = Duplicate("shared-agg").apply(weighted_graph)
        after = compile_graph(mitigated).probability(
            mitigated.probabilities()
        )
        assert after < before

    def test_custom_replica_probability(self, weighted_graph):
        mitigated = Duplicate(
            "shared-agg", replica_probability=0.02
        ).apply(weighted_graph)
        assert mitigated.probability_of("shared-agg#replica") == 0.02

    def test_duplicate_the_top_leaf(self):
        from repro import FaultGraph

        g = FaultGraph()
        g.add_basic_event("only", probability=0.3)
        g.set_top("only")
        mitigated = Duplicate("only").apply(g)
        assert mitigated.top == "only#pair"
        assert compile_graph(mitigated).probability(
            mitigated.probabilities()
        ) == pytest.approx(0.09)

    def test_gate_rejected(self, weighted_graph):
        with pytest.raises(AnalysisError):
            Duplicate("S1").apply(weighted_graph)

    def test_duplicating_twice_still_validates(self, weighted_graph):
        """Re-duplicating targets the surviving primary, not the pair."""
        once = Duplicate("shared-agg").apply(weighted_graph)
        twice = Duplicate("shared-agg#primary").apply(once)
        twice.validate()
        assert "shared-agg#primary#pair" in twice
        # Killing the whole chain now takes three failures.
        groups = minimal_risk_groups(twice)
        assert frozenset(
            {
                "shared-agg#primary#primary",
                "shared-agg#primary#replica",
                "shared-agg#replica",
            }
        ) in groups

    def test_name_collision_raises_cleanly(self):
        """A graph already holding X#replica must not be silently mislabelled."""
        from repro import FaultGraph, GateType

        g = FaultGraph()
        g.add_basic_event("X", probability=0.1)
        g.add_basic_event("X#replica", probability=0.1)
        g.add_basic_event("X#primary", probability=0.1)
        g.add_gate(
            "top", GateType.OR, ["X", "X#replica", "X#primary"], top=True
        )
        with pytest.raises(AnalysisError, match="already"):
            Duplicate("X").apply(g)
        # The graph was not touched by the failed attempt.
        g.validate()

    def test_partial_collision_detected(self):
        from repro import FaultGraph, GateType

        g = FaultGraph()
        g.add_basic_event("X", probability=0.1)
        g.add_basic_event("X#pair", probability=0.1)
        g.add_gate("top", GateType.OR, ["X", "X#pair"], top=True)
        with pytest.raises(AnalysisError, match="X#pair"):
            Duplicate("X").apply(g)


class TestEvaluateMitigations:
    def test_ranked_by_resulting_probability(self, weighted_graph):
        outcomes = evaluate_mitigations(
            weighted_graph,
            [
                Harden("tor1", 0.01),            # minor: tor1 is redundant
                Duplicate("shared-agg"),         # major: kills the SPOF
                Harden("shared-agg", 0.05),      # middling
            ],
        )
        assert outcomes[0].mitigation.describe() == "duplicate shared-agg"
        probabilities = [o.probability_after for o in outcomes]
        assert probabilities == sorted(probabilities)

    def test_unexpected_rg_counts(self, weighted_graph):
        (outcome,) = evaluate_mitigations(
            weighted_graph, [Duplicate("shared-agg")]
        )
        assert outcome.unexpected_before == 1
        assert outcome.unexpected_after == 0
        assert outcome.absolute_reduction > 0
        assert 0 < outcome.relative_reduction < 1
        assert "duplicate" in outcome.describe()

    def test_empty_mitigations_rejected(self, weighted_graph):
        with pytest.raises(AnalysisError):
            evaluate_mitigations(weighted_graph, [])

    def test_relative_reduction_defined_at_zero_baseline(self):
        """Pr(before) == 0 yields 0.0, the same convention as the
        zero-risk importance guards."""
        from repro.analysis.whatif import MitigationOutcome

        outcome = MitigationOutcome(
            mitigation=Harden("x", 0.0),
            probability_before=0.0,
            probability_after=0.0,
            unexpected_before=0,
            unexpected_after=0,
        )
        assert outcome.relative_reduction == 0.0
        assert outcome.absolute_reduction == 0.0

    def test_zero_weighted_graph_evaluates(self, weighted_graph):
        """End to end with Pr(T) == 0: no division anywhere blows up."""
        zeroed = weighted_graph.map_probabilities(lambda e: 0.0)
        (outcome,) = evaluate_mitigations(zeroed, [Duplicate("shared-agg")])
        assert outcome.probability_before == 0.0
        assert outcome.relative_reduction == 0.0

    def test_method_parameter_is_result_invariant(self, weighted_graph):
        mitigations = [Duplicate("shared-agg"), Harden("tor1", 0.01)]
        reference = evaluate_mitigations(
            weighted_graph, mitigations, method="mocus"
        )
        for method in ("auto", "bdd"):
            outcomes = evaluate_mitigations(
                weighted_graph, mitigations, method=method
            )
            assert [o.probability_after for o in outcomes] == [
                o.probability_after for o in reference
            ]
            assert [o.unexpected_after for o in outcomes] == [
                o.unexpected_after for o in reference
            ]

    def test_graph_never_mutated(self, weighted_graph):
        before = weighted_graph.stats()
        evaluate_mitigations(
            weighted_graph,
            [Duplicate("shared-agg"), Harden("tor1", 0.01)],
        )
        assert weighted_graph.stats() == before
