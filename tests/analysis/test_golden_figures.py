"""Golden regression pins for the fig7/fig9 headline numbers.

Perf refactors keep touching the sampling hot path; the determinism
contract says results may never move unless a PR *means* to move them.
These tests pin smoke-scale headline numbers — Figure 7 detection rates
and the Figure 9 SIA-vs-PIA deployment rankings — to a checked-in JSON
file, so a silent behavioural change fails loudly instead of drifting.

To intentionally re-baseline after a deliberate semantic change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/analysis/test_golden_figures.py

and commit the regenerated ``golden/figures.json`` with an explanation.
"""

import json
import os
from pathlib import Path

import pytest

from repro import AuditSpec, FailureSampler, RGAlgorithm, SIAAuditor
from repro.core import minimal_risk_groups
from repro.core.report import AuditReport
from repro.depdb import DepDB
from repro.depdb.records import HardwareDependency
from repro.privacy.pia import PIAAuditor

GOLDEN_PATH = Path(__file__).parent / "golden" / "figures.json"

#: Figure 7 (smoke scale): topology-A stand-in, fixed seed.
FIG7_PORTS = 4
FIG7_SERVERS = 3
FIG7_SEED = 7
FIG7_ROUNDS = (100, 1_000, 5_000)

#: Figure 9 (smoke scale): 4 providers with *asymmetric* overlap —
#: sliding 12-element windows over a 30-element universe, so different
#: pairs have genuinely different Jaccard similarity and the "which
#: deployment is most independent" question has a pinnable answer.
FIG9_WINDOW = 12
FIG9_UNIVERSE = 30
FIG9_PROVIDERS = 4
FIG9_STRIDE = 7
FIG9_ROUNDS = 1_500


def fig7_graph():
    from repro.acquisition import NetworkDependencyCollector
    from repro.topology import FatTreeConfig, fat_tree, fat_tree_routes

    config = FatTreeConfig(ports=FIG7_PORTS)
    topology = fat_tree(config)
    servers = [f"srv-p{p}-t0-0" for p in range(FIG7_SERVERS)]
    static = {s: fat_tree_routes(config, s) for s in servers}
    depdb = DepDB()
    NetworkDependencyCollector(
        topology, servers=servers, static_routes=static
    ).collect_into(depdb)
    return SIAAuditor(depdb).build_graph(
        AuditSpec(deployment="fig7", servers=tuple(servers))
    )


def compute_fig7() -> dict:
    graph = fig7_graph()
    reference = minimal_risk_groups(graph)
    series = []
    for rounds in FIG7_ROUNDS:
        result = FailureSampler(graph, seed=FIG7_SEED).run(rounds)
        series.append(
            {
                "rounds": rounds,
                "detection_rate": result.detection_rate(reference),
                "top_failures": result.top_failures,
                "risk_groups": len(result.risk_groups),
            }
        )
    return {
        "ports": FIG7_PORTS,
        "servers": FIG7_SERVERS,
        "seed": FIG7_SEED,
        "events": graph.stats()["events"],
        "minimal_rg_count": len(reference),
        "series": series,
    }


def fig9_sets() -> dict[str, list[str]]:
    return {
        f"P{i}": [
            f"e{(i * FIG9_STRIDE + j) % FIG9_UNIVERSE}"
            for j in range(FIG9_WINDOW)
        ]
        for i in range(FIG9_PROVIDERS)
    }


def fig9_sia_report(sets: dict, algorithm: RGAlgorithm) -> AuditReport:
    from itertools import combinations

    depdb = DepDB(
        HardwareDependency(hw=provider, type="component", dep=element)
        for provider in sets
        for element in sets[provider]
    )
    auditor = SIAAuditor(depdb)
    specs = [
        AuditSpec(
            deployment=f"{a} & {b}",
            servers=(a, b),
            algorithm=algorithm,
            sampling_rounds=FIG9_ROUNDS,
            seed=0,
        )
        for a, b in combinations(sorted(sets), 2)
    ]
    return auditor.audit(specs, title="fig9 golden")


def compute_fig9() -> dict:
    sets = fig9_sets()
    sampling = fig9_sia_report(sets, RGAlgorithm.SAMPLING)
    minimal = fig9_sia_report(sets, RGAlgorithm.MINIMAL)
    pia = PIAAuditor(sets, protocol="plaintext").audit(ways=2)
    return {
        "providers": FIG9_PROVIDERS,
        "elements": FIG9_WINDOW,
        "rounds": FIG9_ROUNDS,
        "sia_sampling": {
            "ranking": [
                a.deployment for a in sampling.ranked_deployments()
            ],
            "scores": {a.deployment: a.score for a in sampling.audits},
        },
        "sia_minimal": {
            "ranking": [a.deployment for a in minimal.ranked_deployments()],
            "scores": {a.deployment: a.score for a in minimal.audits},
        },
        "pia_plaintext": {
            "ranking": [entry.name for entry in pia.entries],
            "jaccard": {entry.name: entry.jaccard for entry in pia.entries},
        },
    }


def compute_all() -> dict:
    return {"fig7": compute_fig7(), "fig9": compute_fig9()}


@pytest.fixture(scope="module")
def computed() -> dict:
    measured = compute_all()
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(measured, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return measured


@pytest.fixture(scope="module")
def golden() -> dict:
    if not GOLDEN_PATH.exists():  # pragma: no cover - setup error
        pytest.fail(
            f"{GOLDEN_PATH} missing; regenerate with REPRO_UPDATE_GOLDEN=1"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestGoldenFig7:
    def test_headline_numbers_pinned(self, computed, golden):
        assert computed["fig7"] == golden["fig7"]

    def test_detection_improves_with_rounds(self, computed):
        rates = [
            point["detection_rate"] for point in computed["fig7"]["series"]
        ]
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        assert rates[-1] >= 0.95


class TestGoldenFig9:
    def test_rankings_pinned(self, computed, golden):
        assert computed["fig9"] == golden["fig9"]

    def test_sia_and_pia_agree_on_the_independent_pairs(self, computed):
        """The paper's point: both engines surface the same winners.

        The two zero-overlap provider pairs must outrank every
        overlapping pair under the exact SIA engine and under PIA.
        """
        fig9 = computed["fig9"]
        disjoint = {"P0 & P2", "P1 & P3"}
        assert set(fig9["sia_minimal"]["ranking"][:2]) == disjoint
        assert set(fig9["pia_plaintext"]["ranking"][:2]) == disjoint
        jaccard = fig9["pia_plaintext"]["jaccard"]
        assert all(jaccard[name] == 0.0 for name in disjoint)


def test_golden_file_is_exactly_what_this_code_computes(computed, golden):
    """Whole-document equality — any drift anywhere fails here."""
    assert computed == golden
