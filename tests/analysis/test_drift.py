"""Unit tests for periodic auditing / configuration drift."""

from repro import AuditSpec
from repro.analysis import diff_depdbs, drift_report
from repro.depdb import DepDB, NetworkDependency, SoftwareDependency


def snapshot_v1() -> DepDB:
    db = DepDB()
    db.add(NetworkDependency("S1", "Internet", ("torA", "core1")))
    db.add(NetworkDependency("S2", "Internet", ("torB", "core2")))
    return db


def snapshot_v2_regressed() -> DepDB:
    """An operator re-cabled S2 through torA: shared single point."""
    db = DepDB()
    db.add(NetworkDependency("S1", "Internet", ("torA", "core1")))
    db.add(NetworkDependency("S2", "Internet", ("torA", "core2")))
    return db


class TestDiff:
    def test_empty_diff(self):
        diff = diff_depdbs(snapshot_v1(), snapshot_v1())
        assert diff.is_empty
        assert "0 records added" in diff.summary()

    def test_added_and_removed(self):
        diff = diff_depdbs(snapshot_v1(), snapshot_v2_regressed())
        assert len(diff.added) == 1
        assert len(diff.removed) == 1
        assert diff.added[0].route == ("torA", "core2")
        text = diff.render_text()
        assert "+ " in text and "- " in text

    def test_software_records_diffed(self):
        before = snapshot_v1()
        after = snapshot_v1()
        after.add(SoftwareDependency("Riak", "S1", ("libc6",)))
        diff = diff_depdbs(before, after)
        assert len(diff.added) == 1


class TestDriftReport:
    SPEC = AuditSpec(deployment="S1 & S2", servers=("S1", "S2"))

    def test_regression_detected(self):
        report = drift_report(
            snapshot_v1(), snapshot_v2_regressed(), self.SPEC
        )
        assert report.regressed
        assert frozenset({"device:torA"}) in report.introduced_unexpected
        assert "REGRESSED" in report.summary()
        assert "new unexpected RG" in report.render_text()

    def test_no_change_no_regression(self):
        report = drift_report(snapshot_v1(), snapshot_v1(), self.SPEC)
        assert not report.regressed
        assert not report.introduced_risk_groups
        assert not report.resolved_risk_groups
        assert report.score_before == report.score_after

    def test_improvement_listed_as_resolved(self):
        report = drift_report(
            snapshot_v2_regressed(), snapshot_v1(), self.SPEC
        )
        assert not report.regressed
        assert frozenset({"device:torA"}) in report.resolved_risk_groups

    def test_probabilities_carried_with_weigher(self):
        report = drift_report(
            snapshot_v1(),
            snapshot_v2_regressed(),
            self.SPEC,
            weigher=lambda kind, ident: 0.1,
        )
        assert report.failure_probability_before is not None
        assert (
            report.failure_probability_after
            > report.failure_probability_before
        )


class TestDriftWithDeltaEngine:
    """Drift events as delta-audit requests (ISSUE 2 wiring)."""

    SPEC = AuditSpec(deployment="S1 & S2", servers=("S1", "S2"))

    def test_engine_backed_drift_matches_plain(self):
        from repro.engine import DeltaAuditEngine

        plain = drift_report(
            snapshot_v1(), snapshot_v2_regressed(), self.SPEC
        )
        engineered = drift_report(
            snapshot_v1(),
            snapshot_v2_regressed(),
            self.SPEC,
            engine=DeltaAuditEngine(),
        )
        assert engineered.regressed == plain.regressed
        assert (
            engineered.introduced_risk_groups
            == plain.introduced_risk_groups
        )
        assert engineered.resolved_risk_groups == plain.resolved_risk_groups
        assert engineered.score_before == plain.score_before
        assert engineered.score_after == plain.score_after

    def test_warm_engine_reuses_the_previous_period(self):
        from repro.engine import DeltaAuditEngine

        engine = DeltaAuditEngine()
        drift_report(snapshot_v1(), snapshot_v2_regressed(), self.SPEC,
                     engine=engine)
        before_hits = engine.cache_info()["audits"]["hits"]
        # Next period: v2 (already audited as "after") is now "before" —
        # both snapshots' structures are known, so zero new audits run.
        drift_report(snapshot_v2_regressed(), snapshot_v2_regressed(),
                     self.SPEC, engine=engine)
        info = engine.cache_info()["audits"]
        assert info["hits"] >= before_hits + 2
        assert info["misses"] == 2  # only the two cold audits ever ran

    def test_plain_audit_engine_still_works(self):
        from repro.engine import AuditEngine

        report = drift_report(
            snapshot_v1(),
            snapshot_v2_regressed(),
            self.SPEC,
            engine=AuditEngine(),
        )
        assert report.regressed
