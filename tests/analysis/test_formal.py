"""Unit tests for the formal exhaustive deployment analysis."""

import pytest

from repro.analysis import formal_analysis
from repro.depdb import DepDB, NetworkDependency
from repro.errors import AnalysisError


@pytest.fixture
def depdb() -> DepDB:
    """Three racks: A and B share nothing; C shares a core with A."""
    db = DepDB()
    db.add(NetworkDependency("RackA", "Internet", ("torA", "core1")))
    db.add(NetworkDependency("RackB", "Internet", ("torB", "core2")))
    db.add(NetworkDependency("RackC", "Internet", ("torC", "core1")))
    return db


class TestFormalAnalysis:
    def test_counts_safe_deployments(self, depdb):
        result = formal_analysis(depdb, ["RackA", "RackB", "RackC"], ways=2)
        assert result.total == 3
        safe_names = {d.name for d in result.safe}
        assert safe_names == {"RackA & RackB", "RackB & RackC"}
        assert result.safe_fraction == pytest.approx(2 / 3)

    def test_unexpected_rgs_identified(self, depdb):
        result = formal_analysis(depdb, ["RackA", "RackC"], ways=2)
        (analysis,) = result.deployments
        assert not analysis.is_safe
        assert frozenset({"device:core1"}) in analysis.unexpected

    def test_lowest_failure_probability(self, depdb):
        result = formal_analysis(
            depdb,
            ["RackA", "RackB", "RackC"],
            ways=2,
            weigher=lambda kind, ident: 0.1,
        )
        best = result.lowest_failure_probability()
        assert best.is_safe
        assert best.failure_probability is not None

    def test_probability_requires_weigher(self, depdb):
        result = formal_analysis(depdb, ["RackA", "RackB"], ways=2)
        with pytest.raises(AnalysisError, match="weigher"):
            result.lowest_failure_probability()

    def test_summary_text(self, depdb):
        result = formal_analysis(
            depdb,
            ["RackA", "RackB", "RackC"],
            ways=2,
            weigher=lambda kind, ident: 0.1,
        )
        summary = result.summary()
        assert "3 candidate" in summary
        assert "lowest failure probability" in summary

    def test_invalid_ways(self, depdb):
        with pytest.raises(AnalysisError):
            formal_analysis(depdb, ["RackA"], ways=2)

    def test_safe_fraction_requires_deployments(self):
        from repro.analysis.formal import FormalAnalysisResult

        with pytest.raises(AnalysisError):
            _ = FormalAnalysisResult(ways=2).safe_fraction
