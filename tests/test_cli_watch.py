"""The ``indaas watch`` CLI verb: JSONL output, warm-cache iterations."""

import json

import pytest

from repro.cli import build_parser, main

NET_DEPDB = (
    '<src="S1" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S2" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S3" dst="Internet" route="ToR2,Core2"/>\n'
)


@pytest.fixture
def watch_dir(tmp_path):
    (tmp_path / "net.depdb").write_text(NET_DEPDB)
    for name, servers in (("web", ["S1", "S2"]), ("db", ["S1", "S3"])):
        (tmp_path / f"{name}.json").write_text(
            json.dumps(
                {
                    "name": f"{name}-tier",
                    "depdb": "net.depdb",
                    "servers": servers,
                    "algorithm": "sampling",
                    "rounds": 2000,
                    "seed": 0,
                }
            )
        )
    return tmp_path


def test_watch_emits_one_json_line_per_iteration(watch_dir, capsys):
    assert (
        main(
            [
                "watch",
                str(watch_dir),
                "--iterations",
                "2",
                "--interval",
                "0",
            ]
        )
        == 0
    )
    lines = [
        json.loads(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    assert [entry["iteration"] for entry in lines] == [1, 2]
    # Canonical event envelope, shared with the serve job stream
    # (`iteration` is kept as a deprecated alias of `seq`).
    for entry in lines:
        assert entry["kind"] == "event"
        assert entry["event"] == "iteration"
        assert entry["seq"] == entry["iteration"]
        assert "schema_version" in entry
        assert "elapsed_seconds" in entry
    first, second = lines
    assert set(first["scores"]) == {"db-tier", "web-tier"}
    assert first["regressions"] == ["web-tier"]
    assert not first["reused"]
    # The warm second poll is a pure cache hit.
    assert set(second["reused"]) == {"db-tier", "web-tier"}
    assert second["delta"]["noop"] is True
    assert second["scores"] == first["scores"]
    # Compact by default: the full report stays out of the stream.
    assert "report" not in first


def test_watch_full_includes_report(watch_dir, capsys):
    assert (
        main(
            [
                "watch",
                str(watch_dir),
                "--iterations",
                "1",
                "--interval",
                "0",
                "--full",
            ]
        )
        == 0
    )
    entry = json.loads(capsys.readouterr().out.strip())
    deployments = entry["report"]["deployments"]
    assert {d["deployment"] for d in deployments} == {"db-tier", "web-tier"}


def test_watch_missing_directory_reports_error_lines(tmp_path, capsys):
    assert (
        main(
            [
                "watch",
                str(tmp_path / "nope"),
                "--iterations",
                "1",
                "--interval",
                "0",
            ]
        )
        == 0
    )
    entry = json.loads(capsys.readouterr().out.strip())
    assert "error" in entry
    assert entry["kind"] == "event"
    assert entry["event"] == "error"


def test_watch_parser_defaults():
    args = build_parser().parse_args(["watch", "d"])
    assert args.interval == 2.0
    assert args.iterations is None
    assert args.block_size == 4096
    assert args.full is False
