"""Structural hashing and the compiled-graph cache."""

import pytest

from repro import ComponentSets, FaultGraph, GateType
from repro.engine import GraphCache, compile_cached, structural_hash


def small_graph(shared: str = "sh") -> FaultGraph:
    sets = ComponentSets.from_mapping(
        {"S1": ["a", "b", shared], "S2": ["c", "d", shared]}
    )
    return sets.to_fault_graph("demo")


class TestStructuralHash:
    def test_identical_structures_share_a_hash(self):
        assert structural_hash(small_graph()) == structural_hash(small_graph())

    def test_display_name_does_not_matter(self):
        sets = ComponentSets.from_mapping({"S1": ["a", "b"], "S2": ["c"]})
        assert structural_hash(sets.to_fault_graph("x")) == structural_hash(
            sets.to_fault_graph("y")
        )

    def test_copies_share_a_hash(self, deep_graph):
        assert structural_hash(deep_graph) == structural_hash(deep_graph.copy())

    def test_different_wiring_changes_hash(self):
        assert structural_hash(small_graph("sh")) != structural_hash(
            small_graph("other")
        )

    def test_probability_changes_hash(self, figure_4b):
        clone = figure_4b.copy()
        clone.set_probability("A1", 0.5)
        assert structural_hash(figure_4b) != structural_hash(clone)

    def test_gate_type_changes_hash(self):
        def build(gate: GateType) -> FaultGraph:
            g = FaultGraph("g")
            g.add_basic_event("x")
            g.add_basic_event("y")
            g.add_gate("top", gate, ["x", "y"], top=True)
            return g

        assert structural_hash(build(GateType.AND)) != structural_hash(
            build(GateType.OR)
        )

    def test_mutation_after_hashing_yields_new_hash(self, deep_graph):
        before = structural_hash(deep_graph)
        deep_graph.add_basic_event("extra")
        deep_graph.add_gate("top2", GateType.OR, ["top", "extra"], top=True)
        assert structural_hash(deep_graph) != before


class TestGraphCache:
    def test_hit_on_structurally_equal_graph(self):
        cache = GraphCache()
        first = cache.compile(small_graph())
        second = cache.compile(small_graph())
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_bdd_and_compiled_share_an_entry(self, figure_4b, figure_4b_probs):
        cache = GraphCache()
        cache.compile(figure_4b)
        bdd = cache.compile_bdd(figure_4b)
        assert len(cache) == 1
        assert bdd.probability(figure_4b_probs) == pytest.approx(0.224)
        assert cache.compile_bdd(figure_4b) is bdd

    def test_lru_eviction(self):
        cache = GraphCache(maxsize=2)
        graphs = [small_graph(f"s{i}") for i in range(3)]
        for g in graphs:
            cache.compile(g)
        assert len(cache) == 2
        # graphs[0] was evicted; recompiling it is a miss.
        cache.compile(graphs[0])
        assert cache.misses == 4

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            GraphCache(maxsize=0)

    def test_info_and_clear(self):
        cache = GraphCache()
        cache.compile(small_graph())
        info = cache.info()
        assert info["entries"] == 1 and info["misses"] == 1
        cache.clear()
        assert len(cache) == 0 and cache.info()["hits"] == 0

    def test_default_cache_reuses_compilations(self):
        first = compile_cached(small_graph("zq-unique"))
        second = compile_cached(small_graph("zq-unique"))
        assert first is second
