"""Persistent worker pool: parity, reuse, repair, cancellation (ISSUE 10).

The :class:`~repro.engine.pool.PersistentPool` must be invisible in the
results: pooled audits are bit-identical to legacy per-call-pool and
serial runs for any worker count, across interleaved audits of
different graphs, worker-side LRU evictions, adaptive early stopping
and injected worker kills.  The pool only changes the economics —
graphs ship once, workers stay warm — which :meth:`PersistentPool.stats`
makes observable and these tests pin.

One module-scoped pool per worker count is shared by most tests here;
that reuse across many unrelated audits *is* the feature under test.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FailureSampler
from repro.core.componentset import ComponentSets
from repro.engine import AuditEngine, DeltaAuditEngine, PersistentPool
from repro.engine.parallel import cancel_scope, map_jobs
from repro.engine.pool import task_key
from repro.errors import AnalysisError, AuditCancelled
from repro.testing.faults import Fault, FaultInjector, FaultSchedule

BLOCK = 256
# Generous CI bound — the real latency is one block plus the 0.05 s
# poll; what matters is that cancellation never waits out the plan.
CANCEL_LATENCY_SECONDS = 20.0


def make_graph(tag: str, providers: int = 3, shared: int = 2):
    sets = {
        f"{tag}-P{i}": [f"{tag}-shared-{j}" for j in range(shared)]
        + [f"{tag}-p{i}-{j}" for j in range(3)]
        for i in range(providers)
    }
    return ComponentSets.from_mapping(sets).to_fault_graph(tag)


GRAPH_A = make_graph("alpha")
GRAPH_B = make_graph("beta", providers=4, shared=1)
# Wide enough that a 50M-round plan far outlasts the cancel bound.
GRAPH_WIDE = make_graph("wide", providers=6, shared=4)


def assert_same(result, reference) -> None:
    assert result.risk_groups == reference.risk_groups
    assert result.top_failures == reference.top_failures
    assert result.unique_failure_sets == reference.unique_failure_sets
    assert (
        result.top_probability_estimate
        == reference.top_probability_estimate
    )


def serial_reference(graph, rounds, seed):
    return FailureSampler(graph, seed=seed, batch_size=BLOCK).run(rounds)


@pytest.fixture(scope="module")
def pools():
    """Lazily constructed shared pools, one per worker count."""
    created: dict[int, PersistentPool] = {}

    def get(workers: int) -> PersistentPool:
        if workers not in created:
            created[workers] = PersistentPool(workers)
        return created[workers]

    yield get
    for pool in created.values():
        pool.close()


# --------------------------------------------------------------------- #
# Bit-identity
# --------------------------------------------------------------------- #


class TestParity:
    @pytest.mark.parametrize("packed", [True, False], ids=["packed", "bool"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pooled_fresh_and_serial_agree(self, pools, workers, packed):
        serial = serial_reference(GRAPH_A, 3000, seed=11)
        legacy = AuditEngine(n_workers=workers, block_size=BLOCK).sample(
            GRAPH_A, 3000, seed=11, packed=packed
        )
        pooled = AuditEngine(
            n_workers=workers, block_size=BLOCK, pool=pools(workers)
        ).sample(GRAPH_A, 3000, seed=11, packed=packed)
        assert_same(legacy, serial)
        assert_same(pooled, serial)

    def test_fresh_single_use_pool_matches_shared_pool(self, pools):
        shared = AuditEngine(
            n_workers=2, block_size=BLOCK, pool=pools(2)
        ).sample(GRAPH_B, 2500, seed=23)
        with PersistentPool(2) as fresh_pool:
            fresh = AuditEngine(
                n_workers=2, block_size=BLOCK, pool=fresh_pool
            ).sample(GRAPH_B, 2500, seed=23)
        assert_same(fresh, shared)
        assert_same(shared, serial_reference(GRAPH_B, 2500, seed=23))

    def test_interleaved_graphs_through_one_pool(self, pools):
        pool = pools(2)
        engine = AuditEngine(n_workers=2, block_size=BLOCK, pool=pool)
        before = pool.stats()
        plan = [(GRAPH_A, 3), (GRAPH_B, 4), (GRAPH_A, 3), (GRAPH_B, 4)]
        for graph, seed in plan:
            result = engine.sample(graph, 2000, seed=seed)
            assert_same(result, serial_reference(graph, 2000, seed=seed))
        after = pool.stats()
        # Each graph ships to each worker at most once; every further
        # block is a warm worker-cache hit.
        assert after["cold_misses"] - before["cold_misses"] <= (
            2 * pool.workers
        )
        assert after["warm_hits"] > before["warm_hits"]
        assert after["published_graphs"] >= 2

    def test_worker_lru_eviction_keeps_bit_identity(self):
        # A one-entry worker cache forces an eviction on every graph
        # switch: correctness must not depend on cache residency.
        with PersistentPool(2, worker_cache_size=1) as pool:
            engine = AuditEngine(n_workers=2, block_size=BLOCK, pool=pool)
            for graph, seed in [
                (GRAPH_A, 3),
                (GRAPH_B, 4),
                (GRAPH_A, 3),
                (GRAPH_B, 4),
            ]:
                result = engine.sample(graph, 2000, seed=seed)
                assert_same(result, serial_reference(graph, 2000, seed=seed))
            assert pool.stats()["cold_misses"] >= 2

    def test_store_eviction_republishes_on_demand(self):
        with PersistentPool(2, store_size=1) as pool:
            engine = AuditEngine(n_workers=2, block_size=BLOCK, pool=pool)
            for graph, seed in [(GRAPH_A, 3), (GRAPH_B, 4), (GRAPH_A, 3)]:
                result = engine.sample(graph, 2000, seed=seed)
                assert_same(result, serial_reference(graph, 2000, seed=seed))
            assert pool.stats()["published_graphs"] == 1

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        providers=st.integers(min_value=2, max_value=4),
        shared=st.integers(min_value=1, max_value=3),
        rounds=st.integers(min_value=500, max_value=3000),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_deployments_pooled_equals_serial(
        self, pools, providers, shared, rounds, seed
    ):
        graph = make_graph(f"fuzz-{providers}-{shared}", providers, shared)
        pooled = AuditEngine(
            n_workers=2, block_size=BLOCK, pool=pools(2)
        ).sample(graph, rounds, seed=seed)
        assert_same(pooled, serial_reference(graph, rounds, seed=seed))

    def test_adaptive_stop_is_pool_invariant(self, pools):
        serial = AuditEngine(n_workers=1, block_size=BLOCK).sample(
            GRAPH_A, 500_000, seed=3, adaptive=True
        )
        pooled = AuditEngine(
            n_workers=2, block_size=BLOCK, pool=pools(2)
        ).sample(GRAPH_A, 500_000, seed=3, adaptive=True)
        assert serial.rounds == pooled.rounds < 500_000
        assert_same(pooled, serial)
        assert (
            serial.metadata["blocks_observed"]
            == pooled.metadata["blocks_observed"]
        )


# --------------------------------------------------------------------- #
# Worker-kill repair
# --------------------------------------------------------------------- #


class TestRepair:
    def test_killed_worker_recovers_and_pool_stays_usable(self):
        serial = serial_reference(GRAPH_A, 4000, seed=5)
        with PersistentPool(2) as pool:
            engine = AuditEngine(n_workers=2, block_size=BLOCK, pool=pool)
            schedule = FaultSchedule(
                (
                    Fault(
                        kind="worker-kill",
                        point="parallel.block",
                        match={"index": 2},
                    ),
                )
            )
            with FaultInjector(schedule) as injector:
                killed = engine.sample(GRAPH_A, 4000, seed=5)
            assert injector.fired, "the kill never triggered"
            assert_same(killed, serial)
            stats = pool.stats()
            assert stats["respawns"] >= 1
            assert stats["inline_blocks"] >= 1
            # The respawned pool keeps serving bit-identical results.
            assert_same(engine.sample(GRAPH_A, 4000, seed=5), serial)


# --------------------------------------------------------------------- #
# Cancellation
# --------------------------------------------------------------------- #


def _sleep_job(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _cancel_after(delay: float):
    event = threading.Event()
    timer = threading.Timer(delay, event.set)
    timer.start()
    return event, timer


class TestCancellation:
    def test_map_jobs_honours_cancel_scope(self):
        # Regression (ISSUE 10 satellite): map_jobs used to hand the
        # whole batch to Executor.map and only return once every job
        # had run; ~15 s of queued sleep must now cancel within the
        # block-latency bound.
        event, timer = _cancel_after(0.3)
        started = time.monotonic()
        try:
            with cancel_scope(event):
                with pytest.raises(AuditCancelled):
                    map_jobs(_sleep_job, [(3.0,)] * 10, 2)
        finally:
            timer.cancel()
        assert time.monotonic() - started < CANCEL_LATENCY_SECONDS

    def test_pool_map_jobs_honours_cancel_scope(self, pools):
        pool = pools(2)
        event, timer = _cancel_after(0.3)
        started = time.monotonic()
        try:
            with cancel_scope(event):
                with pytest.raises(AuditCancelled):
                    pool.map_jobs(_sleep_job, [(3.0,)] * 10)
        finally:
            timer.cancel()
        assert time.monotonic() - started < CANCEL_LATENCY_SECONDS
        # Abandoned futures never poison later calls.
        assert pool.map_jobs(_sleep_job, [(0.0,), (0.0,)]) == [0.0, 0.0]

    def test_pooled_sample_cancels_and_pool_survives(self, pools):
        pool = pools(2)
        engine = AuditEngine(n_workers=2, pool=pool)
        reference = serial_reference(GRAPH_WIDE, 2000, seed=7)
        event, timer = _cancel_after(0.3)
        started = time.monotonic()
        try:
            with cancel_scope(event):
                with pytest.raises(AuditCancelled):
                    engine.sample(GRAPH_WIDE, 50_000_000, seed=1)
        finally:
            timer.cancel()
        assert time.monotonic() - started < CANCEL_LATENCY_SECONDS
        follow_up = AuditEngine(
            n_workers=2, block_size=BLOCK, pool=pool
        ).sample(GRAPH_WIDE, 2000, seed=7)
        assert_same(follow_up, reference)


# --------------------------------------------------------------------- #
# Plumbing: engines, service, keys, lifecycle
# --------------------------------------------------------------------- #


class TestPlumbing:
    def test_task_key_separates_weight_vectors(self):
        base = task_key(GRAPH_A)
        assert task_key(GRAPH_A) == base
        assert task_key(GRAPH_A, [0.1, 0.2]) != base
        assert task_key(GRAPH_A, [0.1, 0.2]) == task_key(GRAPH_A, [0.1, 0.2])
        assert task_key(GRAPH_A, [0.1, 0.2]) != task_key(GRAPH_A, [0.2, 0.1])

    def test_pool_stats_surface_in_metadata_and_info(self, pools, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_DEFAULT", raising=False)
        pool = pools(2)
        engine = AuditEngine(n_workers=2, block_size=BLOCK, pool=pool)
        result = engine.sample(GRAPH_A, 2000, seed=9)
        assert result.metadata["pool"]["enabled"] is True
        assert result.metadata["pool"]["workers"] == 2
        assert engine.info()["pool"]["enabled"] is True
        plain = AuditEngine(n_workers=2, block_size=BLOCK)
        assert plain.info()["pool"] == {"enabled": False}

    def test_engine_owns_pool_with_pool_true(self):
        with AuditEngine(n_workers=2, pool=True) as engine:
            assert engine.pool is not None
            assert engine.pool.workers == 2
            shared = engine.pool
        assert shared.stats()["closed"] is True

    def test_pool_default_env_flips_engine_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_DEFAULT", "1")
        engine = AuditEngine(n_workers=2)
        try:
            assert engine.pool is not None
        finally:
            engine.close()
        monkeypatch.setenv("REPRO_POOL_DEFAULT", "0")
        assert AuditEngine(n_workers=2).pool is None

    def test_serial_engines_never_grow_a_pool(self):
        assert AuditEngine(n_workers=1, pool=True).pool is None

    def test_delta_engine_inherits_pool(self, pools):
        pool = pools(2)
        engine = DeltaAuditEngine(n_workers=2, block_size=BLOCK, pool=pool)
        result = engine.sample(GRAPH_B, 2000, seed=13)
        assert_same(result, serial_reference(GRAPH_B, 2000, seed=13))
        assert result.metadata["pool"]["enabled"] is True

    def test_job_manager_owns_a_server_pool(self, monkeypatch):
        from repro.service.jobs import JobManager

        monkeypatch.delenv("REPRO_POOL_DEFAULT", raising=False)
        manager = JobManager(
            DeltaAuditEngine(n_workers=2), workers=0, resume=False
        )
        pool = manager.engine.pool
        assert pool is not None
        assert manager.stats()["pool"]["enabled"] is True
        manager.shutdown(drain=False)
        assert pool.stats()["closed"] is True

    def test_closed_pool_refuses_new_plans(self):
        pool = PersistentPool(2)
        engine = AuditEngine(n_workers=2, block_size=BLOCK, pool=pool)
        engine.sample(GRAPH_A, 2000, seed=1)
        pool.close()
        with pytest.raises(AnalysisError):
            engine.sample(GRAPH_A, 2000, seed=1)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(AnalysisError):
            PersistentPool(2, worker_cache_size=0)
        with pytest.raises(AnalysisError):
            PersistentPool(2, store_size=0)

    def test_lazy_start(self):
        pool = PersistentPool(4)
        assert not pool.started
        assert pool.stats()["started"] is False
        pool.close()
