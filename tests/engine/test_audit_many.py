"""The audit-many workflow: spec files, the engine API and the CLI verb."""

import json

import pytest

from repro.cli import main
from repro.engine import AuditEngine
from repro.engine.facade import load_audit_job
from repro.errors import SpecificationError

WEB_DEPDB = (
    '<src="S1" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S2" dst="Internet" route="ToR1,Core1"/>\n'
)
DB_DEPDB = (
    '<src="S3" dst="Internet" route="ToR2,Core1"/>\n'
    '<src="S4" dst="Internet" route="ToR3,Core2"/>\n'
)


@pytest.fixture
def spec_dir(tmp_path):
    (tmp_path / "web.depdb").write_text(WEB_DEPDB)
    (tmp_path / "db.depdb").write_text(DB_DEPDB)
    (tmp_path / "web.json").write_text(
        json.dumps(
            {
                "name": "web-tier",
                "depdb": "web.depdb",
                "servers": ["S1", "S2"],
                "algorithm": "sampling",
                "rounds": 4000,
                "seed": 0,
            }
        )
    )
    (tmp_path / "db.json").write_text(
        json.dumps(
            {
                "name": "db-tier",
                "depdb": "db.depdb",
                "servers": ["S3", "S4"],
                "probability": 0.1,
            }
        )
    )
    return tmp_path


class TestLoadAuditJob:
    def test_loads_spec(self, spec_dir):
        job = load_audit_job(spec_dir / "db.json")
        assert job.spec.deployment == "db-tier"
        assert job.spec.servers == ("S3", "S4")
        assert job.probability == 0.1

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"servers": ["S1"]}))
        with pytest.raises(SpecificationError, match="depdb"):
            load_audit_job(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SpecificationError, match="invalid JSON"):
            load_audit_job(path)

    def test_bad_algorithm(self, spec_dir):
        path = spec_dir / "bad.json"
        path.write_text(
            json.dumps(
                {"depdb": "web.depdb", "servers": ["S1"], "algorithm": "x"}
            )
        )
        with pytest.raises(SpecificationError, match="algorithm"):
            load_audit_job(path)

    def test_missing_spec_file(self, tmp_path):
        # An explicit path list bypasses the directory glob, so a typo'd
        # path must still surface as a clean SpecificationError.
        with pytest.raises(SpecificationError, match="cannot read spec"):
            AuditEngine().audit_many([tmp_path / "typo.json"])

    def test_missing_depdb_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"depdb": "absent.depdb", "servers": ["S1"]})
        )
        with pytest.raises(SpecificationError, match="cannot read"):
            load_audit_job(path)

    @pytest.mark.parametrize(
        "overrides,complaint",
        [
            ({"servers": "S1"}, "servers"),
            ({"servers": [1, 2]}, "servers"),
            ({"required": "1"}, "required"),
            ({"rounds": "100"}, "rounds"),
            ({"rounds": True}, "rounds"),
            ({"seed": "0"}, "seed"),
            ({"sample_probability": "0.5"}, "sample_probability"),
            ({"probability": "0.1"}, "probability"),
            ({"name": 7}, "name"),
        ],
    )
    def test_mistyped_fields_raise_specification_error(
        self, spec_dir, overrides, complaint
    ):
        """Hand-edited spec files must fail as clean SpecificationErrors
        (long-running consumers like ``indaas watch`` survive those), not
        as TypeErrors from deep inside AuditSpec."""
        payload = {"depdb": "web.depdb", "servers": ["S1"], **overrides}
        path = spec_dir / "typed.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SpecificationError, match=complaint):
            load_audit_job(path)


class TestAuditMany:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_directory_audit(self, spec_dir, workers):
        report = AuditEngine(n_workers=workers).audit_many(spec_dir)
        assert {a.deployment for a in report.audits} == {
            "web-tier",
            "db-tier",
        }
        # The shared-ToR deployment must rank below the independent one.
        ranked = report.ranked_deployments()
        assert ranked[0].deployment == "db-tier"
        assert ranked[1].has_unexpected_risk_groups

    def test_worker_count_does_not_change_report(self, spec_dir):
        serial = AuditEngine(n_workers=1).audit_many(spec_dir)
        parallel = AuditEngine(n_workers=2).audit_many(spec_dir)
        assert {a.deployment: a.score for a in serial.audits} == {
            a.deployment: a.score for a in parallel.audits
        }

    def test_explicit_file_list(self, spec_dir):
        report = AuditEngine().audit_many([spec_dir / "db.json"])
        assert len(report.audits) == 1


class TestCliAuditMany:
    def test_text_output(self, spec_dir, capsys):
        assert main(["audit-many", str(spec_dir), "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "db-tier" in out and "web-tier" in out
        assert "unexpected risk groups: web-tier" in out

    def test_json_output(self, spec_dir, capsys):
        assert main(["audit-many", str(spec_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["deployments"]) == 2

    def test_missing_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["audit-many", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["audit-many", "d"])
        assert args.workers == -1 and args.top == 5
