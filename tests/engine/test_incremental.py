"""The incremental delta-audit layer (ISSUE 2 tentpole).

Covers the graph diff (and its equivalence with the structural hash),
bit-identical block/audit reuse in :class:`DeltaAuditEngine`, the
``audit_delta`` spec-set workflow, and the ``WatchService`` poll loop.
"""

import json

import pytest

from repro import AuditSpec, FailureSampler, GateType, RGAlgorithm, SIAAuditor
from repro.core.faultgraph import FaultGraph
from repro.depdb import DepDB
from repro.depdb.records import HardwareDependency
from repro.engine import (
    AuditEngine,
    DeltaAuditEngine,
    WatchService,
    graph_delta,
    load_spec_set,
    structural_hash,
)
from repro.engine.facade import AuditJob
from repro.errors import SpecificationError


def chain_graph(shared="core", extra=None):
    """Small two-server graph with a shared leaf and optional extra leaf."""
    g = FaultGraph("g")
    leaves = ["a1", "a2", shared] + (list(extra) if extra else [])
    for leaf in leaves:
        g.add_basic_event(leaf)
    g.add_gate("S1", GateType.OR, ["a1", shared])
    g.add_gate("S2", GateType.OR, ["a2", shared])
    g.add_gate("top", GateType.AND, ["S1", "S2"], top=True)
    return g


class TestGraphDelta:
    def test_noop(self, deep_graph):
        delta = graph_delta(deep_graph, deep_graph.copy())
        assert delta.is_noop
        assert delta.affected == ()
        assert delta.affected_fraction == 0.0
        assert "no structural change" in delta.summary()

    def test_noop_iff_structural_hash_equal(self, deep_graph):
        same = deep_graph.copy()
        assert graph_delta(deep_graph, same).is_noop
        assert structural_hash(deep_graph) == structural_hash(same)
        changed = deep_graph.copy()
        changed.set_probability("libc6", 0.25)
        delta = graph_delta(deep_graph, changed)
        assert not delta.is_noop
        assert structural_hash(deep_graph) != structural_hash(changed)
        assert "libc6" in delta.changed

    def test_added_event_and_affected_cone(self):
        old = chain_graph()
        new = FaultGraph("g")
        for leaf in ("a1", "a2", "core", "a3"):
            new.add_basic_event(leaf)
        new.add_gate("S1", GateType.OR, ["a1", "core"])
        new.add_gate("S2", GateType.OR, ["a2", "core", "a3"])
        new.add_gate("top", GateType.AND, ["S1", "S2"], top=True)
        delta = graph_delta(old, new)
        assert delta.added == ("a3",)
        assert delta.removed == ()
        # S2 gained a child; the cone is the change + its ancestors.
        assert delta.changed == ("S2",)
        assert set(delta.affected) == {"a3", "S2", "top"}
        # The untouched server subtree stays outside the cone.
        assert "S1" not in delta.affected and "a1" not in delta.affected
        assert 0 < delta.affected_fraction < 1

    def test_removed_event_shows_parent_as_changed(self):
        old = FaultGraph("g")
        for leaf in ("a1", "a2", "core", "a3"):
            old.add_basic_event(leaf)
        old.add_gate("S1", GateType.OR, ["a1", "core", "a3"])
        old.add_gate("S2", GateType.OR, ["a2", "core"])
        old.add_gate("top", GateType.AND, ["S1", "S2"], top=True)
        new = chain_graph()
        delta = graph_delta(old, new)
        assert delta.removed == ("a3",)
        assert delta.changed == ("S1",)
        assert set(delta.affected) == {"S1", "top"}

    def test_top_change_is_not_noop(self, deep_graph):
        retopped = deep_graph.copy()
        retopped.set_top("S1")
        delta = graph_delta(deep_graph, retopped)
        assert delta.tops_differ
        assert not delta.is_noop
        # Re-rooting must not report an empty blast radius.
        assert "S1" in delta.affected
        assert delta.affected_fraction > 0
        assert delta.to_dict()["tops_differ"] is True

    def test_same_object_shortcut(self, deep_graph):
        delta = graph_delta(deep_graph, deep_graph)
        assert delta.is_noop
        assert delta.total_events == len(deep_graph.events())


class TestCachedSampling:
    def test_parity_with_serial_and_base_engine(self, deep_graph):
        serial = FailureSampler(deep_graph, seed=21).run(9_000)
        base = AuditEngine().sample(deep_graph, 9_000, seed=21)
        delta = DeltaAuditEngine().sample(deep_graph, 9_000, seed=21)
        for other in (base, delta):
            assert other.risk_groups == serial.risk_groups
            assert other.top_failures == serial.top_failures
            assert other.unique_failure_sets == serial.unique_failure_sets

    def test_repeat_sample_is_a_full_cache_hit(self, deep_graph):
        engine = DeltaAuditEngine(block_size=1024)
        first = engine.sample(deep_graph, 5_000, seed=3)
        second = engine.sample(deep_graph, 5_000, seed=3)
        assert second.risk_groups == first.risk_groups
        assert second.top_failures == first.top_failures
        assert second.metadata["incremental"] == {
            "blocks_reused": 5,
            "blocks_computed": 0,
        }

    def test_rounds_extension_reuses_prefix_blocks(self, deep_graph):
        engine = DeltaAuditEngine(block_size=1024)
        engine.sample(deep_graph, 2_048, seed=8)
        extended = engine.sample(deep_graph, 3_072, seed=8)
        # The first two SeedSequence.spawn children are identical, so
        # only the new third block is computed ...
        assert extended.metadata["incremental"] == {
            "blocks_reused": 2,
            "blocks_computed": 1,
        }
        # ... and the merged result still equals a cold run.
        cold = DeltaAuditEngine(block_size=1024).sample(
            deep_graph, 3_072, seed=8
        )
        assert extended.risk_groups == cold.risk_groups
        assert extended.top_failures == cold.top_failures

    def test_structural_change_invalidates_blocks(self, deep_graph):
        engine = DeltaAuditEngine()
        engine.sample(deep_graph, 4_000, seed=0)
        changed = deep_graph.copy()
        changed.set_probability("core", 0.5)
        result = engine.sample(changed, 4_000, seed=0)
        assert result.metadata["incremental"]["blocks_reused"] == 0

    def test_block_size_is_part_of_the_key(self, deep_graph):
        engine_a = DeltaAuditEngine(block_size=1000)
        engine_b = DeltaAuditEngine(block_size=4096)
        a = engine_a.sample(deep_graph, 4_000, seed=1)
        b = engine_b.sample(deep_graph, 4_000, seed=1)
        # Different stream definitions may legitimately differ ...
        assert a.rounds == b.rounds
        # ... and each equals its own serial counterpart.
        for block_size, result in ((1000, a), (4096, b)):
            serial = FailureSampler(
                deep_graph, seed=1, batch_size=block_size
            ).run(4_000)
            assert serial.risk_groups == result.risk_groups
            assert serial.top_failures == result.top_failures

    def test_seedless_sampling_skips_the_block_cache(self, deep_graph):
        """seed=None blocks can never hit again — storing them would
        only churn warm reusable entries out of the LRU."""
        engine = DeltaAuditEngine()
        result = engine.sample(deep_graph, 4_000, seed=None)
        assert result.metadata["incremental"]["blocks_computed"] == 1
        assert engine.cache_info()["blocks"]["entries"] == 0

    def test_weighted_sampling_through_the_cache(self, figure_4b):
        serial = FailureSampler(figure_4b, use_weights=True, seed=11).run(
            8_192
        )
        engine = DeltaAuditEngine()
        warm = engine.sample(figure_4b, 8_192, use_weights=True, seed=11)
        again = engine.sample(figure_4b, 8_192, use_weights=True, seed=11)
        assert warm.risk_groups == serial.risk_groups
        assert again.risk_groups == serial.risk_groups
        assert again.metadata["incremental"]["blocks_computed"] == 0


def provider_depdb(sets):
    return DepDB(
        HardwareDependency(hw=provider, type="component", dep=element)
        for provider in sets
        for element in sets[provider]
    )


def sampling_spec(a, b, rounds=3_000):
    return AuditSpec(
        deployment=f"{a} & {b}",
        servers=(a, b),
        algorithm=RGAlgorithm.SAMPLING,
        sampling_rounds=rounds,
        seed=0,
    )


SETS = {
    "P0": ["shared-0", "shared-1", "p0-0", "p0-1"],
    "P1": ["shared-0", "shared-1", "p1-0", "p1-1"],
    "P2": ["shared-0", "shared-1", "p2-0", "p2-1"],
}


def jobs_for(sets):
    depdb = provider_depdb(sets)
    pairs = [("P0", "P1"), ("P0", "P2"), ("P1", "P2")]
    return [
        AuditJob(depdb=depdb, spec=sampling_spec(a, b)) for a, b in pairs
    ]


class TestAuditDelta:
    def test_delta_reuses_unaffected_deployments(self):
        old_jobs = jobs_for(SETS)
        new_sets = {name: list(elements) for name, elements in SETS.items()}
        new_sets["P0"][-1] = "p0-replacement"
        new_jobs = jobs_for(new_sets)

        engine = DeltaAuditEngine()
        engine.audit_full(old_jobs, title="t")
        outcome = engine.audit_delta(old_jobs, new_jobs, title="t")
        assert set(outcome.recomputed) == {"P0 & P1", "P0 & P2"}
        assert outcome.reused == ("P1 & P2",)
        assert [c.deployment for c in outcome.delta.changed] == [
            "P0 & P1",
            "P0 & P2",
        ]
        for change in outcome.delta.changed:
            assert "hw:p0-replacement" in change.delta.added
            assert "hw:p0-1" in change.delta.removed
            assert not change.spec_changed

        cold = DeltaAuditEngine().audit_full(new_jobs, title="t")
        assert (
            outcome.report.to_dict()["deployments"]
            == cold.to_dict()["deployments"]
        )

    def test_first_run_treats_everything_as_added(self):
        outcome = DeltaAuditEngine().audit_delta(None, jobs_for(SETS))
        assert outcome.reused == ()
        assert set(outcome.delta.added) == {
            "P0 & P1",
            "P0 & P2",
            "P1 & P2",
        }
        assert outcome.reuse_fraction == 0.0

    def test_spec_parameter_change_forces_recompute(self):
        old_jobs = jobs_for(SETS)
        new_jobs = jobs_for(SETS)
        new_jobs[0] = AuditJob(
            depdb=new_jobs[0].depdb,
            spec=sampling_spec("P0", "P1", rounds=5_000),
        )
        engine = DeltaAuditEngine()
        engine.audit_full(old_jobs)
        outcome = engine.audit_delta(old_jobs, new_jobs)
        assert outcome.recomputed == ("P0 & P1",)
        changed = outcome.delta.changed[0]
        assert changed.spec_changed and changed.delta.is_noop

    def test_added_and_removed_deployments(self):
        old_jobs = jobs_for(SETS)
        engine = DeltaAuditEngine()
        engine.audit_full(old_jobs)
        outcome = engine.audit_delta(old_jobs, old_jobs[:2] )
        assert outcome.delta.removed == ("P1 & P2",)
        assert outcome.reused == ("P0 & P1", "P0 & P2")
        assert len(outcome.report.audits) == 2

    def test_delta_through_base_engine_facade(self):
        from repro.core.audit import SIAAuditor

        engine = AuditEngine()
        first = engine.audit_delta(None, jobs_for(SETS))
        assert first.reused == ()
        assert set(first.new_graphs) == {"P0 & P1", "P0 & P2", "P1 & P2"}
        # The facade memoises one delta companion, so a second call
        # sees the warm caches; feeding new_graphs back skips the
        # old-side rebuild entirely.
        builds = []
        original = SIAAuditor.build_graph
        try:
            SIAAuditor.build_graph = (
                lambda self, spec: builds.append(spec.deployment)
                or original(self, spec)
            )
            second = engine.audit_delta(
                jobs_for(SETS), jobs_for(SETS), old_graphs=first.new_graphs
            )
        finally:
            SIAAuditor.build_graph = original
        assert len(second.reused) == 3
        assert sorted(builds) == ["P0 & P1", "P0 & P2", "P1 & P2"]
        assert engine.delta() is engine.delta()

    def test_duplicate_deployment_names_rejected(self):
        jobs = jobs_for(SETS)
        with pytest.raises(SpecificationError, match="duplicate"):
            load_spec_set([jobs[0], jobs[0]])

    def test_mixed_ranking_methods_rejected(self):
        from repro.core.ranking import RankingMethod

        jobs = jobs_for(SETS)
        spec = sampling_spec("P1", "P2")
        spec.ranking = RankingMethod.PROBABILITY
        jobs[2] = AuditJob(depdb=jobs[2].depdb, spec=spec)
        with pytest.raises(SpecificationError, match="ranking"):
            DeltaAuditEngine().audit_delta(None, jobs)

    def test_seedless_sampling_audits_are_never_cached(self):
        """spec.seed=None means fresh entropy per cold run — serving a
        cached result would claim bit-identical reuse for output that
        is not reproducible."""
        depdb = provider_depdb(SETS)
        spec = AuditSpec(
            deployment="P0 & P1",
            servers=("P0", "P1"),
            algorithm=RGAlgorithm.SAMPLING,
            sampling_rounds=2_000,
            seed=None,
        )
        engine = DeltaAuditEngine()
        engine.audit_spec(depdb, spec)
        engine.audit_spec(depdb, spec)
        assert engine.cache_info()["audits"]["entries"] == 0
        job = AuditJob(depdb=depdb, spec=spec)
        outcome = engine.audit_delta([job], [job])
        assert outcome.recomputed == ("P0 & P1",)
        assert outcome.reused == ()

    def test_audit_spec_caches_by_structure(self):
        depdb = provider_depdb(SETS)
        engine = DeltaAuditEngine()
        spec = sampling_spec("P0", "P1")
        first = engine.audit_spec(depdb, spec)
        second = engine.audit_spec(depdb, spec)
        assert second is first  # cache hit returns the stored audit
        plain = SIAAuditor(depdb).audit_deployment(spec)
        assert [e.events for e in first.ranking] == [
            e.events for e in plain.ranking
        ]
        assert first.score == plain.score
        assert first.notes == plain.notes


WATCH_DEPDB = (
    '<src="S1" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S2" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S3" dst="Internet" route="ToR2,Core2"/>\n'
)


def write_watch_dir(tmp_path):
    (tmp_path / "net.depdb").write_text(WATCH_DEPDB)
    (tmp_path / "web.json").write_text(
        json.dumps(
            {
                "name": "web-tier",
                "depdb": "net.depdb",
                "servers": ["S1", "S2"],
                "algorithm": "sampling",
                "rounds": 2000,
                "seed": 0,
            }
        )
    )
    (tmp_path / "db.json").write_text(
        json.dumps(
            {
                "name": "db-tier",
                "depdb": "net.depdb",
                "servers": ["S1", "S3"],
                "algorithm": "sampling",
                "rounds": 2000,
                "seed": 0,
            }
        )
    )
    return tmp_path


class TestWatchService:
    def test_warm_iterations_reuse_everything(self, tmp_path):
        write_watch_dir(tmp_path)
        service = WatchService(tmp_path, interval=0)
        first = service.run_once()
        assert first["iteration"] == 1
        assert set(first["delta"]["added"]) == {"db-tier", "web-tier"}
        assert first["recomputed"] and not first["reused"]
        assert set(first["scores"]) == {"db-tier", "web-tier"}
        assert first["best"] == "db-tier"
        assert first["regressions"] == ["web-tier"]

        second = service.run_once()
        assert second["delta"]["noop"] is True
        assert set(second["reused"]) == {"db-tier", "web-tier"}
        assert not second["recomputed"]
        # Identical audit payload; only the reuse metadata moves.
        assert (
            second["report"]["deployments"] == first["report"]["deployments"]
        )

    def test_file_change_recomputes_only_affected(self, tmp_path):
        write_watch_dir(tmp_path)
        service = WatchService(tmp_path, interval=0)
        service.run_once()
        # Re-route S3: only db-tier depends on it.
        (tmp_path / "net.depdb").write_text(
            WATCH_DEPDB.replace("ToR2,Core2", "ToR9,Core2")
        )
        report = service.run_once()
        assert report["recomputed"] == ["db-tier"]
        assert report["reused"] == ["web-tier"]
        changed = report["delta"]["changed"]
        assert [c["deployment"] for c in changed] == ["db-tier"]
        assert "device:ToR9" in changed[0]["graph"]["added"]

    def test_spec_errors_are_reported_not_fatal(self, tmp_path):
        service = WatchService(tmp_path / "missing", interval=0)
        report = service.run_once()
        assert "error" in report and report["iteration"] == 1
        # The loop keeps going after an error iteration.
        seen = []
        service.run(iterations=2, emit=seen.append)
        assert [r["iteration"] for r in seen] == [2, 3]
        assert all("error" in r for r in seen)

    def test_mistyped_spec_field_is_survivable(self, tmp_path):
        write_watch_dir(tmp_path)
        service = WatchService(tmp_path, interval=0)
        assert "error" not in service.run_once()
        payload = json.loads((tmp_path / "db.json").read_text())
        payload["required"] = "1"  # wrong JSON type, valid JSON
        (tmp_path / "db.json").write_text(json.dumps(payload))
        broken = service.run_once()
        assert "error" in broken and "required" in broken["error"]

    def test_half_written_depdb_is_survivable(self, tmp_path):
        """Any IndaasError mid-poll (here: DependencyDataError from a
        truncated DepDB being rewritten) must yield an error line, and
        the service must recover on the next poll."""
        write_watch_dir(tmp_path)
        service = WatchService(tmp_path, interval=0)
        assert "error" not in service.run_once()
        (tmp_path / "net.depdb").write_text('<src="S1" dst="Int')
        broken = service.run_once()
        assert "error" in broken and broken["iteration"] == 2
        (tmp_path / "net.depdb").write_text(WATCH_DEPDB)
        recovered = service.run_once()
        assert "error" not in recovered
        assert set(recovered["reused"]) == {"db-tier", "web-tier"}

    def test_steady_state_rebuilds_nothing(self, tmp_path, monkeypatch):
        """Warm polls with byte-stable files recycle the previous
        iteration's parsed jobs *and* built graphs: no re-parse, no
        rebuild — just stat calls, hash checks and cache hits."""
        from repro.core.audit import SIAAuditor
        from repro.engine import incremental

        write_watch_dir(tmp_path)
        service = WatchService(tmp_path, interval=0)
        service.run_once()
        builds, parses = [], []
        original_build = SIAAuditor.build_graph
        monkeypatch.setattr(
            SIAAuditor,
            "build_graph",
            lambda self, spec: builds.append(spec.deployment)
            or original_build(self, spec),
        )
        original_load = incremental.load_audit_job
        monkeypatch.setattr(
            incremental,
            "load_audit_job",
            lambda path, payload=None: parses.append(str(path))
            or original_load(path, payload=payload),
        )
        steady = service.run_once()
        assert set(steady["reused"]) == {"db-tier", "web-tier"}
        assert builds == [] and parses == []
        # A touched spec file re-parses and rebuilds only itself.
        payload = json.loads((tmp_path / "db.json").read_text())
        (tmp_path / "db.json").write_text(json.dumps(payload))
        after_touch = service.run_once()
        assert [p.endswith("db.json") for p in parses] == [True]
        assert builds == ["db-tier"]
        # Byte-identical content => same structural hash => still reused.
        assert set(after_touch["reused"]) == {"db-tier", "web-tier"}

    def test_errored_poll_cannot_pin_a_stale_graph(self, tmp_path):
        """A file changed during an *errored* iteration must not be
        paired with its pre-change graph once the error clears."""
        write_watch_dir(tmp_path)
        service = WatchService(tmp_path, interval=0)
        assert "error" not in service.run_once()
        # db.json changes content, and the same poll errors because a
        # sibling file duplicates a deployment name.
        payload = json.loads((tmp_path / "db.json").read_text())
        payload["servers"] = ["S2", "S3"]
        (tmp_path / "db.json").write_text(json.dumps(payload))
        (tmp_path / "dup.json").write_text(
            (tmp_path / "web.json").read_text()
        )
        broken = service.run_once()
        assert "error" in broken and "duplicate" in broken["error"]
        (tmp_path / "dup.json").unlink()
        # db.json is byte-stable since the errored poll; the service
        # must audit its NEW content, not replay the pre-change graph.
        recovered = service.run_once()
        assert "error" not in recovered
        assert "db-tier" in recovered["recomputed"]
        cold = DeltaAuditEngine().audit_full(
            load_spec_set(tmp_path), title=service.title
        )
        assert (
            recovered["report"]["deployments"]
            == cold.to_dict()["deployments"]
        )

    def test_compact_mode_skips_report_serialisation(self, tmp_path):
        write_watch_dir(tmp_path)
        service = WatchService(tmp_path, interval=0, include_report=False)
        report = service.run_once()
        assert "report" not in report
        assert set(report["scores"]) == {"db-tier", "web-tier"}

    def test_run_sleeps_between_but_not_after(self, tmp_path):
        write_watch_dir(tmp_path)
        naps = []
        service = WatchService(
            tmp_path, interval=1.5, sleep=naps.append
        )
        count = service.run(iterations=3)
        assert count == 3
        assert naps == [1.5, 1.5]

    def test_accepts_a_base_audit_engine(self, tmp_path):
        """Handing a plain AuditEngine must not crash the service: the
        engine's delta companion (sharing its GraphCache) is used."""
        write_watch_dir(tmp_path)
        base = AuditEngine()
        service = WatchService(tmp_path, engine=base, interval=0)
        assert service.engine is base.delta()
        first = service.run_once()
        assert "error" not in first
        second = service.run_once()
        assert set(second["reused"]) == {"db-tier", "web-tier"}

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(SpecificationError):
            WatchService(tmp_path, interval=-1)
        with pytest.raises(SpecificationError):
            WatchService(tmp_path).run(iterations=0)
