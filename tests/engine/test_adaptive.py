"""Adaptive early stopping, per-run seeding and worker resolution (ISSUE 7).

Three contracts:

* adaptive runs are *honest*: ``rounds`` / ``top_probability_estimate``
  reflect the rounds actually executed, the stopping point is decided in
  plan order (so it is worker-count invariant), and exact-rounds results
  are untouched by the feature existing;
* a sampler's k-th ``run()`` is a pure function of ``(graph, parameters,
  seed, k)`` — repeat calls draw fresh streams without mutating shared
  ``SeedSequence`` state;
* ``resolve_workers`` follows one convention everywhere: ``None``/0/1
  inline, exactly -1 = all CPUs, other negatives rejected.
"""

from __future__ import annotations

import os

import pytest

from repro import FailureSampler
from repro.core.componentset import ComponentSets
from repro.engine import AuditEngine
from repro.engine.adaptive import AdaptiveConfig, AdaptiveStopper
from repro.engine.batch import BlockOutcome
from repro.engine.parallel import resolve_workers
from repro.errors import AnalysisError

SETS = {
    "P0": ["shared-0", "p0-0", "p0-1"],
    "P1": ["shared-0", "p1-0", "p1-1"],
    "P2": ["shared-0", "shared-1", "p2-0"],
}
GRAPH = ComponentSets.from_mapping(SETS).to_fault_graph("adaptive")


class TestStopper:
    def test_config_validation(self):
        with pytest.raises(AnalysisError):
            AdaptiveConfig(rel_tol=0.0)
        with pytest.raises(AnalysisError):
            AdaptiveConfig(abs_tol=-1.0)
        with pytest.raises(AnalysisError):
            AdaptiveConfig(confidence_z=0.0)
        with pytest.raises(AnalysisError):
            AdaptiveConfig(min_blocks=0)
        with pytest.raises(AnalysisError):
            AdaptiveConfig(patience_blocks=0)

    def test_never_stops_before_min_blocks(self):
        stopper = AdaptiveStopper(AdaptiveConfig(min_blocks=5, patience_blocks=1))
        settled = BlockOutcome(rounds=10_000, top_failures=5_000)
        for _ in range(4):
            assert stopper.observe(settled) is False
        assert stopper.observe(settled) is True

    def test_new_group_resets_patience(self):
        stopper = AdaptiveStopper(AdaptiveConfig(min_blocks=1, patience_blocks=2))
        quiet = BlockOutcome(rounds=10_000, top_failures=5_000)
        novel = BlockOutcome(
            rounds=10_000, top_failures=5_000, groups={frozenset({"x"})}
        )
        assert stopper.observe(quiet) is False
        assert stopper.observe(novel) is False  # new group: counter resets
        assert stopper.observe(quiet) is False
        assert stopper.observe(quiet) is True
        summary = stopper.summary()
        assert summary["stopped_early"] is True
        assert summary["blocks_observed"] == 4


class TestAdaptiveSampling:
    def test_early_stop_reports_honest_rounds(self):
        budget = 500_000
        sampler = FailureSampler(
            GRAPH, seed=3, batch_size=256, adaptive=True
        )
        result = sampler.run(budget)
        assert result.rounds < budget
        meta = result.metadata
        assert meta["adaptive"] is True
        assert meta["stopped_early"] is True
        assert result.rounds == meta["blocks_observed"] * 256
        assert meta["blocks"] == meta["blocks_observed"]
        assert meta["blocks"] < meta["planned_blocks"]
        assert (
            result.top_probability_estimate
            == result.top_failures / result.rounds
        )

    def test_non_stopping_adaptive_equals_exact(self):
        """With an unsatisfiable rule, adaptive mode is a pure no-op —
        the exact-rounds golden figures cannot be perturbed by it."""
        exact = FailureSampler(GRAPH, seed=9, batch_size=256).run(2000)
        adaptive = FailureSampler(
            GRAPH,
            seed=9,
            batch_size=256,
            adaptive=True,
            adaptive_config=AdaptiveConfig(min_blocks=10**6),
        ).run(2000)
        assert adaptive.rounds == exact.rounds == 2000
        assert adaptive.risk_groups == exact.risk_groups
        assert adaptive.top_failures == exact.top_failures
        assert adaptive.unique_failure_sets == exact.unique_failure_sets
        assert adaptive.metadata["stopped_early"] is False
        assert "adaptive" not in exact.metadata

    def test_stopping_point_is_worker_count_invariant(self):
        results = [
            AuditEngine(n_workers=n, block_size=256).sample(
                GRAPH, 500_000, seed=3, adaptive=True
            )
            for n in (1, 3)
        ]
        serial, parallel = results
        assert serial.rounds == parallel.rounds < 500_000
        assert serial.risk_groups == parallel.risk_groups
        assert serial.top_failures == parallel.top_failures
        assert serial.unique_failure_sets == parallel.unique_failure_sets
        assert (
            serial.metadata["blocks_observed"]
            == parallel.metadata["blocks_observed"]
        )


class TestRunIndexDeterminism:
    def test_repeat_runs_draw_fresh_reproducible_streams(self):
        first = FailureSampler(GRAPH, seed=21, batch_size=256)
        second = FailureSampler(GRAPH, seed=21, batch_size=256)
        a0, a1 = first.run(2000), first.run(2000)
        b0, b1 = second.run(2000), second.run(2000)
        # The k-th run is a pure function of (graph, parameters, seed, k):
        for ours, theirs in ((a0, b0), (a1, b1)):
            assert ours.top_failures == theirs.top_failures
            assert ours.risk_groups == theirs.risk_groups
            assert ours.unique_failure_sets == theirs.unique_failure_sets
        assert a0.metadata["run_index"] == 0
        assert a1.metadata["run_index"] == 1
        # ... and repeat runs are fresh streams, not replays.
        assert a0.top_failures != a1.top_failures or (
            a0.risk_groups != a1.risk_groups
        )

    def test_run_zero_matches_engine_stream(self):
        """Run 0 keeps the historical seeding, so engine-vs-sampler
        parity (and every golden pin built on it) is unchanged."""
        sampler = FailureSampler(GRAPH, seed=21, batch_size=256).run(2000)
        engine = AuditEngine(block_size=256).sample(GRAPH, 2000, seed=21)
        assert sampler.risk_groups == engine.risk_groups
        assert sampler.top_failures == engine.top_failures


class TestResolveWorkers:
    @pytest.mark.parametrize("requested", [None, 0, 1])
    def test_inline_values(self, requested):
        assert resolve_workers(requested) == 1

    def test_minus_one_is_all_cpus(self):
        assert resolve_workers(-1) == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("requested", [-2, -5, -100])
    def test_other_negatives_rejected(self, requested):
        with pytest.raises(AnalysisError, match="exactly -1"):
            resolve_workers(requested)

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_engine_and_sampler_share_the_convention(self):
        with pytest.raises(AnalysisError, match="exactly -1"):
            AuditEngine(n_workers=-5)
        assert AuditEngine(n_workers=-1).n_workers == max(
            1, os.cpu_count() or 1
        )
