"""Bit-packed kernel parity (ISSUE 7 tentpole).

The uint64 kernel evaluates 64 rounds per bitwise gate op but must stay
*bit-identical* to the boolean reference path: both draw the same random
stream, so every `BlockOutcome` field (rounds, top_failures, groups,
raw_keys) and every merged `SamplingResult` must match exactly — for any
graph, probability, block size, round count and worker count.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import FailureSampler
from repro.core.compile import (
    CompiledGraph,
    _threshold_words,
    pack_rounds,
    unpack_rounds,
)
from repro.core.componentset import ComponentSets
from repro.engine import AuditEngine
from repro.engine.batch import run_block

from tests.core.test_property_core import fault_graphs


# --------------------------------------------------------------------- #
# Word-level primitives
# --------------------------------------------------------------------- #


@settings(max_examples=60, deadline=None)
@given(
    st.integers(1, 200),  # rounds (crosses the 64-bit word boundary)
    st.integers(1, 12),   # columns
    st.integers(0, 2**31 - 1),
)
def test_pack_unpack_roundtrip(rounds, cols, seed):
    rng = np.random.default_rng(seed)
    failures = rng.random((rounds, cols)) < 0.5
    words = pack_rounds(failures)
    assert words.shape == (cols, -(-rounds // 64))
    assert words.dtype == np.dtype("<u8")
    np.testing.assert_array_equal(unpack_rounds(words, rounds), failures)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(1, 9),    # children
    st.integers(1, 130),  # rounds
    st.data(),
)
def test_threshold_words_matches_popcount(children, rounds, data):
    threshold = data.draw(st.integers(1, children))
    seed = data.draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    child_bools = rng.random((rounds, children)) < 0.5
    result = _threshold_words(pack_rounds(child_bools), threshold)
    expected = child_bools.sum(axis=1) >= threshold
    np.testing.assert_array_equal(
        unpack_rounds(result[np.newaxis, :], rounds)[:, 0], expected
    )


@settings(max_examples=40, deadline=None)
@given(fault_graphs(), st.integers(1, 130), st.integers(0, 2**31 - 1))
def test_evaluate_batch_packed_matches_boolean(graph, rounds, seed):
    compiled = CompiledGraph(graph)
    rng = np.random.default_rng(seed)
    failures = rng.random((rounds, compiled.n_basic)) < 0.4
    node_words = compiled.evaluate_batch_packed(pack_rounds(failures))
    values = compiled.evaluate_batch(failures, return_all=True)
    np.testing.assert_array_equal(
        unpack_rounds(node_words, rounds), values
    )
    # Failing-row gather used for witness extraction agrees too.
    failing = np.flatnonzero(values[:, compiled.top_index])
    np.testing.assert_array_equal(
        compiled.unpack_assignments(node_words, failing), values[failing]
    )


# --------------------------------------------------------------------- #
# Block-level parity: same BlockOutcome, bit for bit
# --------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(
    fault_graphs(),
    st.integers(1, 200),              # block size (rounds per block)
    st.floats(0.05, 0.8),             # sampling probability
    st.booleans(),                    # minimise
    st.integers(0, 2**31 - 1),
)
def test_run_block_packed_is_bit_identical(
    graph, rounds, probability, minimise, seed
):
    compiled = CompiledGraph(graph)
    outcomes = [
        run_block(
            compiled,
            rounds,
            np.random.default_rng(seed),
            default_probability=probability,
            minimise=minimise,
            packed=packed,
        )
        for packed in (True, False)
    ]
    assert outcomes[0] == outcomes[1]


@settings(max_examples=15, deadline=None)
@given(
    fault_graphs(),
    st.integers(1, 1000),             # rounds
    st.sampled_from((64, 100, 256)),  # batch_size
    st.integers(0, 2**31 - 1),
)
def test_sampler_packed_is_bit_identical(graph, rounds, batch_size, seed):
    results = [
        FailureSampler(
            graph, seed=seed, batch_size=batch_size, packed=packed
        ).run(rounds)
        for packed in (True, False)
    ]
    packed_result, boolean_result = results
    assert packed_result.rounds == boolean_result.rounds
    assert packed_result.top_failures == boolean_result.top_failures
    assert packed_result.risk_groups == boolean_result.risk_groups
    assert packed_result.unique_failure_sets == boolean_result.unique_failure_sets
    assert (
        packed_result.top_probability_estimate
        == boolean_result.top_probability_estimate
    )


# --------------------------------------------------------------------- #
# Engine-level parity: kernel choice and worker count are invisible
# --------------------------------------------------------------------- #

SETS = {
    "P0": ["shared-0", "shared-1", "p0-0", "p0-1", "p0-2"],
    "P1": ["shared-0", "p1-0", "p1-1"],
    "P2": ["shared-1", "p2-0", "p2-1", "p2-2"],
}
GRAPH = ComponentSets.from_mapping(SETS).to_fault_graph("packed-parity")


def test_engine_packed_matches_boolean_for_any_worker_count():
    reference = AuditEngine(block_size=512).sample(
        GRAPH, 4000, seed=17, packed=False
    )
    for n_workers in (1, 2):
        result = AuditEngine(n_workers=n_workers, block_size=512).sample(
            GRAPH, 4000, seed=17
        )
        assert result.risk_groups == reference.risk_groups
        assert result.top_failures == reference.top_failures
        assert result.unique_failure_sets == reference.unique_failure_sets
        assert (
            result.top_probability_estimate
            == reference.top_probability_estimate
        )
