"""Worker-crash recovery: a dead pool worker never changes results.

An injected ``worker-kill`` fault makes one sampling worker ``_exit``
mid-plan — breaking the whole ``ProcessPoolExecutor`` — and the parent
finishes the remaining blocks inline.  The merged outcome must be
bit-identical to an undisturbed serial run, for any worker count: that
is the determinism contract crash recovery leans on.
"""

import os

import numpy as np
import pytest

from repro.core.sampling import merge_block_outcomes
from repro.engine.cache import compile_cached
from repro.engine.parallel import plan_blocks, run_plan_parallel, run_plan_serial
from repro.testing.faults import Fault, FaultInjector, FaultSchedule

SEED = int(os.environ.get("REPRO_FAULT_SEED", "20140807"))


def fresh_plan(seed=5, rounds=2000, block_size=256):
    return plan_blocks(rounds, block_size, np.random.SeedSequence(seed))


def fingerprint(outcomes):
    result = merge_block_outcomes(
        outcomes,
        minimised=True,
        sample_probability=0.5,
        elapsed_seconds=0.0,
    )
    return (
        result.rounds,
        result.top_failures,
        tuple(sorted(map(tuple, map(sorted, result.risk_groups)))),
    )


@pytest.fixture
def reference(deep_graph):
    outcomes = run_plan_serial(compile_cached(deep_graph), fresh_plan())
    return fingerprint(outcomes)


class TestWorkerCrashRecovery:
    def test_killed_worker_is_recovered_bit_identically(
        self, deep_graph, reference
    ):
        schedule = FaultSchedule(
            (
                Fault(
                    kind="worker-kill",
                    point="parallel.block",
                    match={"index": 2},
                ),
            )
        )
        with FaultInjector(schedule) as injector:
            outcomes = run_plan_parallel(deep_graph, fresh_plan(), 2)
        assert injector.fired, "the kill never triggered"
        assert fingerprint(outcomes) == reference

    @pytest.mark.parametrize("workers", [2, 3])
    def test_recovery_is_identical_for_any_worker_count(
        self, deep_graph, reference, workers
    ):
        schedule = FaultSchedule.seeded(SEED, n=2, kinds=("worker-kill",))
        with FaultInjector(schedule) as injector:
            outcomes = run_plan_parallel(deep_graph, fresh_plan(), workers)
        assert injector.fired
        assert fingerprint(outcomes) == reference

    def test_first_block_kill_runs_whole_plan_inline(
        self, deep_graph, reference
    ):
        schedule = FaultSchedule(
            (
                Fault(
                    kind="worker-kill",
                    point="parallel.block",
                    match={"index": 0},
                ),
            )
        )
        with FaultInjector(schedule):
            outcomes = run_plan_parallel(deep_graph, fresh_plan(), 2)
        assert fingerprint(outcomes) == reference

    def test_no_faults_means_no_recovery_path(self, deep_graph, reference):
        outcomes = run_plan_parallel(deep_graph, fresh_plan(), 2)
        assert fingerprint(outcomes) == reference
