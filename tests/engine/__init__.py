"""Tests for the parallel batched analysis engine."""
