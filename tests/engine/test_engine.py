"""AuditEngine parity, determinism and integration.

The central guarantee (ISSUE 1 acceptance): for a fixed seed the
parallel/batched engine returns the *same* risk-group family and
top-probability estimate as the serial :class:`FailureSampler`, for any
worker count.
"""

import pytest

from repro import (
    AuditSpec,
    ComponentSets,
    FailureSampler,
    RGAlgorithm,
    SIAAuditor,
    minimal_risk_groups,
)
from repro.analysis.whatif import Duplicate, Harden, evaluate_mitigations
from repro.depdb import DepDB
from repro.engine import AuditEngine, GraphCache
from repro.errors import AnalysisError, SpecificationError


@pytest.fixture
def provider_graph():
    """Fig-9-style two-way deployment with shared components."""
    sets = ComponentSets.from_mapping(
        {
            "P0": [f"shared-{j}" for j in range(6)]
            + [f"p0-{j}" for j in range(6)],
            "P1": [f"shared-{j}" for j in range(6)]
            + [f"p1-{j}" for j in range(6)],
        }
    )
    return sets.to_fault_graph("providers")


NETWORK_DEPDB = (
    '<src="S1" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S2" dst="Internet" route="ToR1,Core1"/>\n'
    '<src="S3" dst="Internet" route="ToR2,Core2"/>\n'
)


class TestSamplingParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_engine_matches_serial_sampler_exactly(
        self, provider_graph, workers
    ):
        serial = FailureSampler(provider_graph, seed=123).run(10_000)
        engine = AuditEngine(n_workers=workers)
        result = engine.sample(provider_graph, 10_000, seed=123)
        assert result.risk_groups == serial.risk_groups
        assert result.top_failures == serial.top_failures
        assert (
            result.top_probability_estimate
            == serial.top_probability_estimate
        )
        assert result.unique_failure_sets == serial.unique_failure_sets

    def test_worker_count_never_changes_results(self, provider_graph):
        engine_block = dict(block_size=1024)
        results = [
            AuditEngine(n_workers=w, **engine_block).sample(
                provider_graph, 5_000, seed=9
            )
            for w in (1, 2, 3)
        ]
        for other in results[1:]:
            assert other.risk_groups == results[0].risk_groups
            assert other.top_failures == results[0].top_failures
            assert (
                other.unique_failure_sets == results[0].unique_failure_sets
            )

    @pytest.mark.parametrize("minimise", [True, False])
    def test_parity_holds_in_both_modes(self, deep_graph, minimise):
        serial = FailureSampler(deep_graph, seed=5, minimise=minimise).run(
            6_000
        )
        parallel = AuditEngine(n_workers=2).sample(
            deep_graph, 6_000, seed=5, minimise=minimise
        )
        assert parallel.risk_groups == serial.risk_groups
        assert parallel.top_failures == serial.top_failures
        assert parallel.minimised is minimise

    def test_weighted_sampling_parity(self, figure_4b):
        serial = FailureSampler(figure_4b, use_weights=True, seed=11).run(
            8_192
        )
        parallel = AuditEngine(n_workers=2, block_size=2048).sample(
            figure_4b, 8_192, use_weights=True, seed=11
        )
        serial_small_block = FailureSampler(
            figure_4b, use_weights=True, seed=11, batch_size=2048
        ).run(8_192)
        assert parallel.top_failures == serial_small_block.top_failures
        assert parallel.risk_groups == serial_small_block.risk_groups
        # Both runs estimate the same underlying probability (0.224).
        assert serial.top_probability_estimate == pytest.approx(
            0.224, abs=0.03
        )
        assert parallel.top_probability_estimate == pytest.approx(
            0.224, abs=0.03
        )

    def test_sampler_finds_exact_family(self, provider_graph):
        reference = minimal_risk_groups(provider_graph)
        result = AuditEngine(n_workers=2).sample(
            provider_graph, 20_000, seed=0
        )
        assert result.detection_rate(reference) == 1.0

    def test_engine_seed_determinism(self, deep_graph):
        engine = AuditEngine(n_workers=2)
        first = engine.sample(deep_graph, 4_000, seed=3)
        second = engine.sample(deep_graph, 4_000, seed=3)
        assert first.risk_groups == second.risk_groups
        assert first.top_failures == second.top_failures

    def test_invalid_parameters(self, figure_4a):
        engine = AuditEngine()
        with pytest.raises(AnalysisError):
            engine.sample(figure_4a, 0)
        with pytest.raises(AnalysisError):
            engine.sample(figure_4a, 10, sample_probability=1.0)
        with pytest.raises(AnalysisError):
            AuditEngine(block_size=0)

    def test_cache_reused_across_samples(self, deep_graph):
        engine = AuditEngine()
        engine.sample(deep_graph, 100, seed=0)
        engine.sample(deep_graph, 100, seed=1)
        engine.sample(deep_graph.copy(), 100, seed=2)
        info = engine.cache.info()
        assert info["misses"] == 1
        assert info["hits"] == 2


class TestAuditorIntegration:
    def make_auditor(self, workers=1):
        depdb = DepDB.loads(NETWORK_DEPDB)
        return SIAAuditor(depdb, engine=AuditEngine(n_workers=workers))

    def spec(self, servers=("S1", "S2"), **kwargs):
        kwargs.setdefault("algorithm", RGAlgorithm.SAMPLING)
        kwargs.setdefault("sampling_rounds", 4_000)
        return AuditSpec(
            deployment=" & ".join(servers), servers=tuple(servers), **kwargs
        )

    def test_engine_audit_matches_plain_auditor(self):
        depdb = DepDB.loads(NETWORK_DEPDB)
        plain = SIAAuditor(depdb).audit_deployment(self.spec())
        engineered = self.make_auditor().audit_deployment(self.spec())
        assert [e.events for e in engineered.ranking] == [
            e.events for e in plain.ranking
        ]
        assert engineered.score == plain.score
        # Whole reports must match too — notes may not leak engine
        # details, or worker count would change serialized output.
        assert engineered.notes == plain.notes

    def test_multi_spec_audit_fans_out(self):
        auditor = self.make_auditor(workers=2)
        specs = [self.spec(("S1", "S2")), self.spec(("S1", "S3"))]
        report = auditor.audit(specs, title="fanout")
        assert len(report.audits) == 2
        serial = SIAAuditor(auditor.depdb).audit(specs, title="serial")
        assert [a.deployment for a in report.ranked_deployments()] == [
            a.deployment for a in serial.ranked_deployments()
        ]
        assert {a.deployment: a.score for a in report.audits} == {
            a.deployment: a.score for a in serial.audits
        }

    def test_unpicklable_weigher_falls_back_to_serial(self):
        """A closure weigher can't ship to workers: the multi-spec
        fan-out must quietly run serially — no exception, and output
        identical to a plain serial auditor with the same weigher."""
        depdb = DepDB.loads(NETWORK_DEPDB)
        captured = object()  # force a real closure cell

        def weigher(kind, identifier):  # a closure: not picklable
            assert captured is not None
            return 0.1

        specs = [self.spec(("S1", "S2")), self.spec(("S1", "S3"))]
        auditor = SIAAuditor(
            depdb, weigher=weigher, engine=AuditEngine(n_workers=2)
        )
        report = auditor.audit(specs)
        assert len(report.audits) == 2

        import pickle

        with pytest.raises(Exception):
            pickle.dumps(weigher)  # precondition: the fallback really fired

        serial = SIAAuditor(depdb, weigher=weigher).audit(specs)
        by_name = {a.deployment: a for a in report.audits}
        for reference in serial.audits:
            ours = by_name[reference.deployment]
            assert [e.events for e in ours.ranking] == [
                e.events for e in reference.ranking
            ]
            assert ours.score == reference.score
            assert ours.failure_probability == reference.failure_probability
            assert ours.notes == reference.notes


class TestWhatIfIntegration:
    def test_engine_matches_serial_whatif(self, figure_4b):
        mitigations = [
            Harden("A2", 0.01),
            Harden("A3", 0.01),
            Duplicate("A2"),
        ]
        serial = evaluate_mitigations(figure_4b, mitigations)
        engineered = evaluate_mitigations(
            figure_4b, mitigations, engine=AuditEngine(n_workers=2)
        )
        assert [o.mitigation.describe() for o in serial] == [
            o.mitigation.describe() for o in engineered
        ]
        for ours, theirs in zip(engineered, serial):
            assert ours.probability_after == pytest.approx(
                theirs.probability_after
            )
            assert ours.unexpected_after == theirs.unexpected_after

    def test_shared_cache_across_sweeps(self, figure_4b):
        cache = GraphCache()
        engine = AuditEngine(cache=cache)
        for _ in range(2):
            evaluate_mitigations(
                figure_4b, [Harden("A2", 0.01)], engine=engine
            )
        # The weighted baseline graph is compiled once, reused once.
        assert cache.hits >= 1


class TestEngineInfo:
    def test_info_shape(self):
        info = AuditEngine(n_workers=2, block_size=512).info()
        assert info["workers"] == 2
        assert info["block_size"] == 512
        assert "cache" in info and "cpu_count" in info

    def test_negative_workers_means_all_cores(self):
        import os

        engine = AuditEngine(n_workers=-1)
        assert engine.n_workers == max(1, os.cpu_count() or 1)

    def test_none_workers_means_inline(self):
        assert AuditEngine(n_workers=None).n_workers == 1
        assert AuditEngine(n_workers=0).n_workers == 1


class TestAuditManyErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(SpecificationError):
            AuditEngine().audit_many(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(SpecificationError):
            AuditEngine().audit_many(tmp_path)

    def test_no_jobs(self):
        with pytest.raises(SpecificationError):
            AuditEngine().audit_jobs([])
