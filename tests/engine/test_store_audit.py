"""DeltaAuditEngine.audit_store: snapshot-diffed delta audits."""

import pytest

from repro.core.spec import AuditSpec
from repro.depdb import (
    DepDB,
    HardwareDependency,
    NetworkDependency,
    SoftwareDependency,
)
from repro.engine.incremental import DeltaAuditEngine

RECORDS = [
    NetworkDependency("S1", "Internet", ("ToR1", "Core1")),
    NetworkDependency("S2", "Internet", ("ToR2", "Core1")),
    HardwareDependency("S1", "CPU", "X5550"),
    HardwareDependency("S2", "CPU", "X5550"),
    SoftwareDependency("Riak1", "S1", ("libc6",)),
    SoftwareDependency("Riak2", "S2", ("libc6",)),
]

SPEC = AuditSpec(deployment="riak", servers=("S1", "S2"))


@pytest.fixture
def db():
    return DepDB(RECORDS)


class TestFirstAudit:
    def test_first_audit_is_a_change(self, db):
        outcome = DeltaAuditEngine().audit_store(db, SPEC)
        assert outcome.previous is None
        assert outcome.changed is True
        assert outcome.cache_hit is False
        assert outcome.content_hash == db.content_hash()

    def test_snapshot_recorded_with_structural_hash_label(self, db):
        outcome = DeltaAuditEngine().audit_store(db, SPEC)
        assert outcome.snapshot is not None
        assert outcome.snapshot.label == outcome.structural_hash
        assert db.last_snapshot().digest == db.content_hash()

    def test_custom_label(self, db):
        outcome = DeltaAuditEngine().audit_store(db, SPEC, label="v1")
        assert outcome.snapshot.label == "v1"

    def test_record_snapshot_false_leaves_store_untouched(self, db):
        outcome = DeltaAuditEngine().audit_store(
            db, SPEC, record_snapshot=False
        )
        assert outcome.snapshot is None
        assert db.last_snapshot() is None


class TestReaudit:
    def test_unchanged_store_is_cache_hit(self, db):
        engine = DeltaAuditEngine()
        first = engine.audit_store(db, SPEC)
        second = engine.audit_store(db, SPEC)
        assert second.changed is False
        assert second.previous == first.content_hash
        assert second.cache_hit is True
        assert second.audit.to_dict() == first.audit.to_dict()

    def test_drifted_store_reaudits(self, db):
        engine = DeltaAuditEngine()
        first = engine.audit_store(db, SPEC)
        db.add(HardwareDependency("S1", "Disk", "WD-1TB"))
        second = engine.audit_store(db, SPEC)
        assert second.changed is True
        assert second.previous == first.content_hash
        assert second.content_hash != first.content_hash

    def test_reverted_store_hits_cache_again(self, db):
        # Config flap: drift then revert to a previously audited record
        # set — the content-addressed caches recognise the old state.
        engine = DeltaAuditEngine()
        first = engine.audit_store(db, SPEC)
        drifted = DepDB(
            RECORDS + [HardwareDependency("S1", "Disk", "WD-1TB")]
        )
        engine.audit_store(drifted, SPEC)
        reverted = DepDB(RECORDS)
        reverted.snapshot("pre-flap")  # any prior snapshot, digest differs
        drifted_back = engine.audit_store(reverted, SPEC)
        assert drifted_back.cache_hit is True
        assert drifted_back.structural_hash == first.structural_hash

    def test_matches_cold_audit_bitwise(self, db):
        warm = DeltaAuditEngine()
        warm.audit_store(db, SPEC)
        cached = warm.audit_store(db, SPEC)
        cold = DeltaAuditEngine().audit_store(DepDB(RECORDS), SPEC)
        assert cached.audit.to_dict() == cold.audit.to_dict()

    def test_outcome_to_dict_round_trips(self, db):
        outcome = DeltaAuditEngine().audit_store(db, SPEC)
        payload = outcome.to_dict()
        assert payload["changed"] is True
        assert payload["snapshot"]["digest"] == outcome.content_hash
