"""Randomized parity harness (ISSUE 2 satellite).

Extends the PR-1 determinism contract to the incremental layer with a
seeded fuzzer: for ~20 randomly generated small deployments, the serial
:class:`FailureSampler`, :meth:`AuditEngine.sample` and a delta audit
after a no-op diff must be bit-identical per ``(seed, block_size)``.

Everything derives from one master seed, so a failure reproduces
exactly; bump ``SPEC_COUNT`` locally to fuzz harder.
"""

import numpy as np
import pytest

from repro import AuditSpec, FailureSampler, RGAlgorithm, SIAAuditor
from repro.core.componentset import ComponentSets
from repro.depdb import DepDB
from repro.depdb.records import HardwareDependency
from repro.engine import AuditEngine, DeltaAuditEngine
from repro.engine.facade import AuditJob

MASTER_SEED = 0xC0FFEE
SPEC_COUNT = 20
BLOCK_SIZES = (256, 1000, 4096)


def random_component_sets(rng: np.random.Generator) -> dict[str, list[str]]:
    """A random k-provider deployment with a random shared pool."""
    providers = int(rng.integers(2, 4))
    shared = int(rng.integers(1, 5))
    sets = {}
    for i in range(providers):
        exclusive = int(rng.integers(2, 9))
        members = [f"shared-{j}" for j in range(shared) if rng.random() < 0.8]
        members += [f"p{i}-{j}" for j in range(exclusive)]
        if not members:
            members = [f"p{i}-0"]
        sets[f"P{i}"] = members
    return sets


def random_cases():
    """The deterministic fuzz corpus: (graph, rounds, seed, block_size)."""
    rng = np.random.default_rng(MASTER_SEED)
    cases = []
    for index in range(SPEC_COUNT):
        sets = random_component_sets(rng)
        graph = ComponentSets.from_mapping(sets).to_fault_graph(
            f"random-{index}"
        )
        rounds = int(rng.integers(500, 5_000))
        seed = int(rng.integers(0, 2**31))
        block_size = int(rng.choice(BLOCK_SIZES))
        cases.append(
            pytest.param(
                graph,
                rounds,
                seed,
                block_size,
                id=f"spec{index}-b{block_size}-r{rounds}",
            )
        )
    return cases


@pytest.mark.parametrize("graph,rounds,seed,block_size", random_cases())
def test_serial_engine_and_noop_delta_are_bit_identical(
    graph, rounds, seed, block_size
):
    serial = FailureSampler(graph, seed=seed, batch_size=block_size).run(
        rounds
    )
    engine = AuditEngine(block_size=block_size).sample(
        graph, rounds, seed=seed
    )
    delta_engine = DeltaAuditEngine(block_size=block_size)
    cold = delta_engine.sample(graph, rounds, seed=seed)
    # A no-op diff: the same structure re-audited — every block must be
    # served from the cache and the merge must not change a bit.
    noop = delta_engine.sample(graph.copy(), rounds, seed=seed)
    assert noop.metadata["incremental"]["blocks_computed"] == 0

    for result in (engine, cold, noop):
        assert result.risk_groups == serial.risk_groups
        assert result.top_failures == serial.top_failures
        assert result.top_probability_estimate == serial.top_probability_estimate
        assert result.unique_failure_sets == serial.unique_failure_sets


def random_depdb_jobs():
    """A handful of random DepDB-backed sampling audit specs."""
    rng = np.random.default_rng(MASTER_SEED + 1)
    jobs = []
    for index in range(6):
        sets = random_component_sets(rng)
        depdb = DepDB(
            HardwareDependency(hw=provider, type="component", dep=element)
            for provider in sets
            for element in sets[provider]
        )
        servers = tuple(sorted(sets))
        spec = AuditSpec(
            deployment=f"random-deployment-{index}",
            servers=servers,
            algorithm=RGAlgorithm.SAMPLING,
            sampling_rounds=int(rng.integers(1_000, 4_000)),
            seed=int(rng.integers(0, 2**31)),
        )
        jobs.append(
            pytest.param(
                AuditJob(depdb=depdb, spec=spec), id=f"deployment{index}"
            )
        )
    return jobs


@pytest.mark.parametrize("job", random_depdb_jobs())
def test_audit_parity_plain_engine_and_noop_delta(job):
    plain = SIAAuditor(job.depdb).audit_deployment(job.spec)
    engineered = SIAAuditor(
        job.depdb, engine=AuditEngine()
    ).audit_deployment(job.spec)
    delta_engine = DeltaAuditEngine()
    outcome = delta_engine.audit_delta(None, [job])
    noop = delta_engine.audit_delta([job], [job])
    assert noop.reused == (job.spec.deployment,)

    for audit in (engineered, outcome.report.audits[0], noop.report.audits[0]):
        assert [e.events for e in audit.ranking] == [
            e.events for e in plain.ranking
        ]
        assert audit.score == plain.score
        assert audit.failure_probability == plain.failure_probability
        assert audit.notes == plain.notes
