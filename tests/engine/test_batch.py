"""Vectorised witness extraction and batch cut minimisation."""

import numpy as np
import pytest

from repro.core.compile import CompiledGraph
from repro.core.minimal_rg import is_minimal_risk_group, minimal_risk_groups
from repro.engine.batch import (
    extract_witnesses_batch,
    minimise_cuts_batch,
    run_block,
)
from repro.errors import FaultGraphError


def failing_values(compiled, rng, rounds=512, probability=0.5):
    failures = compiled.sample_failures(rounds, None, rng, probability)
    values = compiled.evaluate_batch(failures, return_all=True)
    failing = np.flatnonzero(values[:, compiled.top_index])
    return failures[failing], values[failing]


class TestExtractWitnessesBatch:
    def test_witnesses_are_failing_subsets(self, deep_graph):
        compiled = CompiledGraph(deep_graph)
        rng = np.random.default_rng(0)
        failures, values = failing_values(compiled, rng)
        witnesses = extract_witnesses_batch(compiled, values, rng)
        assert witnesses.shape == failures.shape
        # Every witness is contained in its raw failing set...
        assert not (witnesses & ~failures).any()
        # ...and still fails the top event on its own.
        assert compiled.evaluate_batch(witnesses).all()

    def test_rejects_passing_rows(self, figure_4a):
        compiled = CompiledGraph(figure_4a)
        values = np.zeros((1, compiled.n_nodes), dtype=bool)
        with pytest.raises(FaultGraphError):
            extract_witnesses_batch(
                compiled, values, np.random.default_rng(0)
            )

    def test_rejects_wrong_shape(self, figure_4a):
        compiled = CompiledGraph(figure_4a)
        with pytest.raises(FaultGraphError):
            extract_witnesses_batch(
                compiled,
                np.ones((2, compiled.n_nodes + 1), dtype=bool),
                np.random.default_rng(0),
            )

    def test_matches_scalar_witness_semantics(self, deep_graph):
        """Batch witnesses obey the same contract as the scalar path:
        a sufficient set where each failing gate keeps `threshold`
        failing children."""
        compiled = CompiledGraph(deep_graph)
        rng = np.random.default_rng(1)
        _failures, values = failing_values(compiled, rng, rounds=256)
        witnesses = extract_witnesses_batch(compiled, values, rng)
        scalar = {
            compiled.extract_witness(row, rng=np.random.default_rng(2))
            for row in values
        }
        names = compiled.basic_names
        batch = {
            frozenset(names[i] for i in np.flatnonzero(w)) for w in witnesses
        }
        # Not necessarily equal (different random choices), but both draw
        # from the same witness space: every batch witness is a superset
        # of some minimal RG and a valid failing set.
        for witness in batch:
            assert deep_graph.evaluate(witness)
        assert scalar  # the scalar path still works alongside


class TestMinimiseCutsBatch:
    def test_rows_become_minimal_risk_groups(self, deep_graph):
        compiled = CompiledGraph(deep_graph)
        rng = np.random.default_rng(3)
        _failures, values = failing_values(compiled, rng)
        witnesses = extract_witnesses_batch(compiled, values, rng)
        minimal = minimise_cuts_batch(compiled, witnesses, rng)
        names = compiled.basic_names
        for row in np.unique(minimal, axis=0):
            group = {names[i] for i in np.flatnonzero(row)}
            assert is_minimal_risk_group(deep_graph, group)

    def test_input_not_mutated(self, figure_4a):
        compiled = CompiledGraph(figure_4a)
        cuts = np.ones((2, compiled.n_basic), dtype=bool)
        before = cuts.copy()
        minimise_cuts_batch(compiled, cuts, np.random.default_rng(0))
        assert (cuts == before).all()

    def test_rejects_wrong_shape(self, figure_4a):
        compiled = CompiledGraph(figure_4a)
        with pytest.raises(FaultGraphError):
            minimise_cuts_batch(
                compiled,
                np.ones((1, compiled.n_basic + 2), dtype=bool),
                np.random.default_rng(0),
            )


class TestRunBlock:
    def test_counts_and_groups(self, figure_4a):
        compiled = CompiledGraph(figure_4a)
        outcome = run_block(compiled, 2000, np.random.default_rng(0))
        assert outcome.rounds == 2000
        assert 0 < outcome.top_failures <= 2000
        assert outcome.groups
        # Minimised block groups are true minimal RGs, so they must be
        # drawn from the exact family.
        assert outcome.groups <= set(minimal_risk_groups(figure_4a))
        assert len(outcome.raw_keys) <= outcome.top_failures

    def test_raw_mode_returns_failing_sets(self, figure_4a):
        compiled = CompiledGraph(figure_4a)
        outcome = run_block(
            compiled, 500, np.random.default_rng(1), minimise=False
        )
        assert len(outcome.groups) == len(outcome.raw_keys)
        for group in outcome.groups:
            assert figure_4a.evaluate(group)

    def test_no_failures_block(self, deep_graph):
        compiled = CompiledGraph(deep_graph)
        # With a tiny failure probability most blocks see no top failure.
        outcome = run_block(
            compiled,
            3,
            np.random.default_rng(5),
            default_probability=1e-9,
        )
        assert outcome.top_failures == 0
        assert outcome.groups == set() and outcome.raw_keys == set()

    def test_block_is_a_pure_function_of_its_seed(self, deep_graph):
        compiled = CompiledGraph(deep_graph)
        first = run_block(compiled, 1000, np.random.default_rng(7))
        second = run_block(compiled, 1000, np.random.default_rng(7))
        assert first.top_failures == second.top_failures
        assert first.groups == second.groups
        assert first.raw_keys == second.raw_keys
