"""Cooperative cancellation across the parallel sampling path (ISSUE 7).

The serial loop always honoured :func:`cancel_scope` at block
boundaries, but the multi-process path used to hand the whole plan to
``pool.map`` and only notice cancellation after every block had run.
These tests pin the fixed behaviour: cancellation takes effect within
roughly one block's wall-clock on every path, and a cancelled run
produces no result at all.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.componentset import ComponentSets
from repro.engine import AuditEngine
from repro.engine.parallel import cancel_scope
from repro.errors import AuditCancelled

# A moderately wide deployment so a full 50M-round plan takes far longer
# than the asserted cancellation latency.
SETS = {
    f"P{i}": [f"shared-{j}" for j in range(4)] + [f"p{i}-{j}" for j in range(6)]
    for i in range(6)
}
GRAPH = ComponentSets.from_mapping(SETS).to_fault_graph("cancel")

# Generous CI bound; the real latency is one 4096-round block plus the
# 0.05 s poll interval, i.e. well under a second.
CANCEL_LATENCY_SECONDS = 20.0


def test_parallel_run_cancels_within_one_block():
    event = threading.Event()
    engine = AuditEngine(n_workers=2)
    timer = threading.Timer(0.3, event.set)
    timer.start()
    started = time.monotonic()
    try:
        with cancel_scope(event):
            with pytest.raises(AuditCancelled):
                engine.sample(GRAPH, 50_000_000, seed=1)
    finally:
        timer.cancel()
    assert time.monotonic() - started < CANCEL_LATENCY_SECONDS


def test_pre_cancelled_scope_produces_no_result():
    event = threading.Event()
    event.set()
    with cancel_scope(event):
        with pytest.raises(AuditCancelled):
            AuditEngine(n_workers=2).sample(GRAPH, 100_000, seed=1)


def test_cancel_abandons_speculative_blocks_immediately():
    """The cancel path must never wait out in-flight speculation.

    The per-call pool used to be shut down with ``wait=True``, so a
    cancelled 50M-round plan stalled until every queued block had run.
    Speculative futures are now abandoned: latency stays bounded by
    one block plus the poll interval even though far more rounds than
    the bound could execute were queued at cancel time.
    """
    event = threading.Event()
    engine = AuditEngine(n_workers=2)
    timer = threading.Timer(0.2, event.set)
    timer.start()
    started = time.monotonic()
    try:
        with cancel_scope(event):
            with pytest.raises(AuditCancelled):
                engine.sample(GRAPH, 50_000_000, seed=1)
    finally:
        timer.cancel()
    assert time.monotonic() - started < CANCEL_LATENCY_SECONDS


def test_pooled_engine_cancels_within_one_block():
    """Same latency bound through a shared :class:`PersistentPool` —
    and the pool must come out of the cancellation reusable."""
    from repro.engine import PersistentPool

    with PersistentPool(2) as pool:
        engine = AuditEngine(n_workers=2, pool=pool)
        reference = engine.sample(GRAPH, 20_000, seed=2)
        event = threading.Event()
        timer = threading.Timer(0.3, event.set)
        timer.start()
        started = time.monotonic()
        try:
            with cancel_scope(event):
                with pytest.raises(AuditCancelled):
                    engine.sample(GRAPH, 50_000_000, seed=1)
        finally:
            timer.cancel()
        assert time.monotonic() - started < CANCEL_LATENCY_SECONDS
        repeat = engine.sample(GRAPH, 20_000, seed=2)
        assert repeat.risk_groups == reference.risk_groups
        assert repeat.top_failures == reference.top_failures
