"""Unit tests for the fat-tree generator (Table 3)."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    TOPOLOGY_A,
    TOPOLOGY_B,
    TOPOLOGY_C,
    DeviceType,
    FatTreeConfig,
    fat_tree,
)

#: Table 3 of the paper, verbatim.
PAPER_TABLE_3 = {
    16: {"core": 64, "aggregation": 128, "tor": 128, "server": 1024, "total": 1344},
    24: {"core": 144, "aggregation": 288, "tor": 288, "server": 3456, "total": 4176},
    48: {
        "core": 576,
        "aggregation": 1152,
        "tor": 1152,
        "server": 27648,
        "total": 30528,
    },
}


class TestConfig:
    @pytest.mark.parametrize("ports", [3, 2, 7, 0, -4])
    def test_invalid_port_counts(self, ports):
        with pytest.raises(TopologyError):
            FatTreeConfig(ports=ports)

    @pytest.mark.parametrize("ports", [16, 24, 48])
    def test_expected_counts_match_paper(self, ports):
        assert FatTreeConfig(ports=ports).expected_counts == PAPER_TABLE_3[ports]

    def test_table3_constants(self):
        assert TOPOLOGY_A.ports == 16
        assert TOPOLOGY_B.ports == 24
        assert TOPOLOGY_C.ports == 48


class TestGeneratedTopology:
    @pytest.mark.parametrize("ports", [4, 8, 16])
    def test_census_matches_expectation(self, ports):
        config = FatTreeConfig(ports=ports)
        topo = fat_tree(config)
        counts = topo.counts()
        for key, expected in config.expected_counts.items():
            assert counts[key] == expected, key

    def test_topology_a_is_1344_devices(self):
        assert fat_tree(TOPOLOGY_A).counts()["total"] == 1344

    def test_tor_connects_to_all_pod_aggs(self):
        topo = fat_tree(FatTreeConfig(ports=4))
        neighbors = set(topo.neighbors("pod0-tor0"))
        assert {"pod0-agg0", "pod0-agg1"} <= neighbors

    def test_agg_connects_to_its_core_group_only(self):
        topo = fat_tree(FatTreeConfig(ports=4))
        neighbors = {
            n for n in topo.neighbors("pod1-agg0") if n.startswith("core")
        }
        assert neighbors == {"core-0-0", "core-0-1"}

    def test_servers_per_tor(self):
        topo = fat_tree(FatTreeConfig(ports=4))
        servers = [
            n for n in topo.neighbors("pod2-tor1") if n.startswith("srv")
        ]
        assert len(servers) == 2

    def test_internet_behind_every_core(self):
        topo = fat_tree(FatTreeConfig(ports=4))
        assert set(topo.neighbors("Internet")) == {
            d.name for d in topo.devices(DeviceType.CORE)
        }

    def test_internet_optional(self):
        topo = fat_tree(FatTreeConfig(ports=4, attach_internet=False))
        assert "Internet" not in topo

    def test_pod_and_rack_metadata(self):
        topo = fat_tree(FatTreeConfig(ports=4))
        server = topo.device("srv-p3-t1-0")
        assert server.pod == 3
        assert server.rack == 3 * 2 + 1
