"""Unit tests for the Jellyfish topology generator."""

import pytest

from repro.errors import TopologyError
from repro.topology.jellyfish import JellyfishConfig, jellyfish
from repro.topology.routing import shortest_routes


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"switches": 2},
            {"switches": 8, "degree": 1},
            {"switches": 8, "degree": 8},
            {"switches": 5, "degree": 3},        # odd product
            {"servers_per_switch": 0},
            {"gateways": 0},
            {"gateways": 99},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(TopologyError):
            JellyfishConfig(**kwargs)


class TestGenerated:
    @pytest.fixture(scope="class")
    def topo(self):
        return jellyfish(JellyfishConfig(switches=12, degree=4, seed=1))

    def test_census(self, topo):
        counts = topo.counts()
        assert counts["tor"] == 12
        assert counts["server"] == 24

    def test_regular_degree(self, topo):
        for i in range(12):
            switch_neighbors = [
                n for n in topo.neighbors(f"jf-sw{i}")
                if n.startswith("jf-sw")
            ]
            assert len(switch_neighbors) == 4

    def test_connected_with_internet(self, topo):
        topo.validate_connected()
        routes = shortest_routes(topo, "jf-srv5-0", "Internet")
        assert routes

    def test_deterministic_for_seed(self):
        a = jellyfish(JellyfishConfig(switches=10, degree=3, seed=7))
        b = jellyfish(JellyfishConfig(switches=10, degree=3, seed=7))
        assert {ln.name for ln in a.links()} == {ln.name for ln in b.links()}

    def test_different_seeds_differ(self):
        a = jellyfish(JellyfishConfig(switches=10, degree=3, seed=1))
        b = jellyfish(JellyfishConfig(switches=10, degree=3, seed=2))
        assert {ln.name for ln in a.links()} != {ln.name for ln in b.links()}

    def test_auditable_end_to_end(self, topo):
        """Jellyfish feeds the same pipeline as the fat tree."""
        from repro import AuditSpec, SIAAuditor
        from repro.acquisition import NetworkDependencyCollector
        from repro.depdb import DepDB

        db = DepDB()
        NetworkDependencyCollector(
            topo, servers=["jf-srv5-0", "jf-srv8-0"], max_routes=6
        ).collect_into(db)
        audit = SIAAuditor(db).audit_deployment(
            AuditSpec(deployment="jf", servers=("jf-srv5-0", "jf-srv8-0"))
        )
        assert audit.ranking
