"""Unit tests for the Figure-2 sample storage system."""

from repro.topology import StorageSamplePlan, storage_sample
from repro.topology.storage_sample import SAMPLE_HARDWARE, SAMPLE_SOFTWARE


class TestPlan:
    def test_s1_s2_share_tor1(self):
        plan = StorageSamplePlan()
        assert plan.tor_of("S1") == plan.tor_of("S2") == "ToR1"
        assert plan.tor_of("S3") == "ToR2"

    def test_routes_match_figure_3(self):
        plan = StorageSamplePlan()
        assert plan.routes("S1") == (("ToR1", "Core1"), ("ToR1", "Core2"))

    def test_software_matches_figure_3(self):
        assert SAMPLE_SOFTWARE["S1"]["Riak1"] == ("libc6", "libsvn1")
        assert SAMPLE_SOFTWARE["S2"]["QueryEngine2"] == ("libc6", "libgcc1")
        assert SAMPLE_SOFTWARE["S3"] == {}

    def test_hardware_models_embed_server_names(self):
        for server, components in SAMPLE_HARDWARE.items():
            for _type, model in components:
                assert model.startswith(server)


class TestTopology:
    def test_census(self):
        topo = storage_sample()
        counts = topo.counts()
        assert counts["server"] == 3
        assert counts["tor"] == 2
        assert counts["core"] == 2

    def test_connected(self):
        storage_sample().validate_connected()
