"""Unit tests for the lab cloud topology (§6.2.2)."""

import pytest

from repro.topology import LAB_HARDWARE, LAB_SERVERS, LabCloudPlan, lab_cloud


@pytest.fixture(scope="module")
def plan() -> LabCloudPlan:
    return LabCloudPlan()


class TestPlan:
    def test_four_servers(self, plan):
        assert plan.servers == LAB_SERVERS

    def test_tor_assignment(self, plan):
        assert plan.tor_of("Server1") == "Switch1"
        assert plan.tor_of("Server2") == "Switch1"
        assert plan.tor_of("Server3") == "Switch2"
        assert plan.tor_of("Server4") == "Switch2"

    def test_redundant_routes(self, plan):
        routes = plan.routes("Server2")
        assert routes == (("Switch1", "Core1"), ("Switch1", "Core2"))

    def test_vm_names(self, plan):
        assert plan.vm_name(7) == "VM7"


class TestHardwareSharingMatrix:
    """The engineered hardware batches behind the §6.2.2 result."""

    def models(self, server):
        return {model for _type, model in LAB_HARDWARE[server]}

    def test_s1_s3_share_disk_batch(self):
        assert "SED900" in self.models("Server1") & self.models("Server3")

    def test_s1_s4_share_cpu_model(self):
        assert "Intel-X5550" in self.models("Server1") & self.models("Server4")

    def test_s2_s4_share_nic_model(self):
        assert "Intel-X520" in self.models("Server2") & self.models("Server4")

    def test_s2_s3_share_nothing(self):
        assert not self.models("Server2") & self.models("Server3")


class TestTopology:
    def test_device_census(self, plan):
        topo = lab_cloud(plan)
        counts = topo.counts()
        assert counts["server"] == 4
        assert counts["tor"] == 2
        assert counts["core"] == 2

    def test_connected(self, plan):
        lab_cloud(plan).validate_connected()
