"""Unit tests for the reconstructed Benson data center (§6.2.1)."""

from itertools import combinations

import pytest

from repro.topology import (
    CANDIDATE_RACKS,
    GROUP_A_RACKS,
    GROUP_B_RACKS,
    GROUP_C_RACKS,
    DatacenterPlan,
    DeviceType,
    benson_datacenter,
)


@pytest.fixture(scope="module")
def plan() -> DatacenterPlan:
    return DatacenterPlan()


@pytest.fixture(scope="module")
def topo(plan):
    return benson_datacenter(plan)


class TestPlanStructure:
    def test_twenty_candidates(self, plan):
        assert len(plan.candidates) == 20
        assert plan.candidates == CANDIDATE_RACKS

    def test_groups_partition_the_candidates(self):
        all_groups = set(GROUP_A_RACKS) | set(GROUP_B_RACKS) | set(GROUP_C_RACKS)
        assert len(all_groups) == 20
        assert not set(GROUP_A_RACKS) & set(GROUP_B_RACKS)
        assert not set(GROUP_A_RACKS) & set(GROUP_C_RACKS)

    def test_group_sizes_give_27_safe_pairs(self):
        assert len(GROUP_A_RACKS) * len(GROUP_B_RACKS) == 27
        assert len(list(combinations(CANDIDATE_RACKS, 2))) == 190

    def test_uplinks_by_group(self, plan):
        assert plan.uplink(5) == ("b1", "c1")
        assert plan.uplink(29) == ("b2", "c2")
        assert plan.uplink(10) == ("b1", "c2")

    def test_racks_5_and_29_are_direct(self, plan):
        assert not plan.has_patch_switch(5)
        assert not plan.has_patch_switch(29)
        assert plan.has_patch_switch(6)

    def test_route_devices(self, plan):
        assert plan.route_devices(5) == ("e5", "b1", "c1")
        assert plan.route_devices(6) == ("e6", "m6", "b1", "c1")

    def test_safe_pairs_are_exactly_a_cross_b(self, plan):
        safe = 0
        for left, right in combinations(plan.candidates, 2):
            shared = set(plan.route_devices(left)) & set(
                plan.route_devices(right)
            )
            crosses = {left, right} <= set(GROUP_A_RACKS) | set(
                GROUP_B_RACKS
            ) and (
                (left in GROUP_A_RACKS) != (right in GROUP_A_RACKS)
            )
            if not shared:
                safe += 1
                assert crosses, (left, right)
        assert safe == 27


class TestTopology:
    def test_thirty_three_tors(self, topo):
        assert len(topo.devices(DeviceType.TOR)) == 33

    def test_four_routers(self, topo):
        assert {d.name for d in topo.devices(DeviceType.CORE)} == {"c1", "c2"}
        assert {d.name for d in topo.devices(DeviceType.AGGREGATION)} == {
            "b1",
            "b2",
        }

    def test_one_server_per_rack(self, topo, plan):
        assert len(topo.servers()) == plan.racks

    def test_connected(self, topo):
        topo.validate_connected()

    def test_direct_rack_has_no_patch_switch(self, topo):
        assert "m5" not in topo
        assert "m6" in topo
