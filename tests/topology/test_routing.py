"""Unit tests for route enumeration."""

import pytest

from repro.errors import RoutingError
from repro.topology import (
    FatTreeConfig,
    fat_tree,
    fat_tree_routes,
    internet_facing_servers,
    lab_cloud,
    route_devices,
    shortest_routes,
    storage_sample,
)


class TestShortestRoutes:
    def test_lab_cloud_ecmp(self):
        topo = lab_cloud()
        routes = shortest_routes(topo, "Server1", "Internet")
        assert routes == [("Switch1", "Core1"), ("Switch1", "Core2")]

    def test_storage_sample_matches_figure_3(self):
        topo = storage_sample()
        routes = shortest_routes(topo, "S1", "Internet")
        assert routes == [("ToR1", "Core1"), ("ToR1", "Core2")]

    def test_max_routes_cap(self):
        topo = lab_cloud()
        routes = shortest_routes(topo, "Server1", "Internet", max_routes=1)
        assert len(routes) == 1

    def test_unknown_device(self):
        with pytest.raises(RoutingError):
            shortest_routes(lab_cloud(), "ghost", "Internet")

    def test_no_path(self):
        from repro.topology import DeviceType, Topology

        topo = Topology()
        topo.add_device("a", DeviceType.SERVER)
        topo.add_device("b", DeviceType.SERVER)
        with pytest.raises(RoutingError, match="no route"):
            shortest_routes(topo, "a", "b")


class TestFatTreeRoutes:
    @pytest.fixture(scope="class")
    def config(self):
        return FatTreeConfig(ports=4)

    @pytest.fixture(scope="class")
    def topo(self, config):
        return fat_tree(config)

    def test_internet_route_count(self, config):
        routes = fat_tree_routes(config, "srv-p0-t0-0")
        assert len(routes) == (config.ports // 2) ** 2  # 4 for k=4

    def test_closed_form_matches_networkx(self, config, topo):
        closed = set(fat_tree_routes(config, "srv-p0-t0-0"))
        searched = set(shortest_routes(topo, "srv-p0-t0-0", "Internet"))
        assert closed == searched

    def test_cross_pod_routes(self, config, topo):
        closed = set(fat_tree_routes(config, "srv-p0-t0-0", "srv-p1-t1-0"))
        searched = set(shortest_routes(topo, "srv-p0-t0-0", "srv-p1-t1-0"))
        assert closed == searched

    def test_same_pod_routes(self, config, topo):
        closed = set(fat_tree_routes(config, "srv-p0-t0-0", "srv-p0-t1-0"))
        searched = set(shortest_routes(topo, "srv-p0-t0-0", "srv-p0-t1-0"))
        assert closed == searched

    def test_same_tor_route(self, config):
        routes = fat_tree_routes(config, "srv-p0-t0-0", "srv-p0-t0-1")
        assert routes == [("pod0-tor0",)]

    def test_max_routes_cap(self, config):
        assert len(fat_tree_routes(config, "srv-p0-t0-0", max_routes=2)) == 2

    def test_bad_server_name(self, config):
        with pytest.raises(RoutingError):
            fat_tree_routes(config, "not-a-server")


class TestHelpers:
    def test_route_devices_validates(self):
        topo = lab_cloud()
        devices = route_devices(topo, [("Switch1", "Core1")])
        assert devices == frozenset({"Switch1", "Core1"})
        with pytest.raises(Exception):
            route_devices(topo, [("nope",)])

    def test_internet_facing_servers(self):
        topo = lab_cloud()
        assert internet_facing_servers(topo) == [
            "Server1",
            "Server2",
            "Server3",
            "Server4",
        ]
