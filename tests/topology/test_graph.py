"""Unit tests for the topology model."""

import pytest

from repro.errors import TopologyError
from repro.topology import Device, DeviceType, Topology


@pytest.fixture
def topo() -> Topology:
    t = Topology("test")
    t.add_device("s1", DeviceType.SERVER)
    t.add_device("tor1", DeviceType.TOR)
    t.add_device("core1", DeviceType.CORE)
    t.add_link("s1", "tor1")
    t.add_link("tor1", "core1")
    return t


class TestConstruction:
    def test_duplicate_device_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.add_device("s1", DeviceType.SERVER)

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            Device("", DeviceType.SERVER)

    def test_self_link_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.add_link("s1", "s1")

    def test_link_to_unknown_device(self, topo):
        with pytest.raises(TopologyError):
            topo.add_link("s1", "ghost")

    def test_parallel_links(self, topo):
        links = topo.add_link("s1", "core1", count=2)
        assert len(links) == 2
        assert topo.link_count("s1", "core1") == 2
        assert links[0].name != links[1].name

    def test_parallel_links_accumulate(self, topo):
        topo.add_link("s1", "core1")
        topo.add_link("s1", "core1")
        assert topo.link_count("s1", "core1") == 2
        assert len(topo.links_between("s1", "core1")) == 2


class TestInspection:
    def test_neighbors(self, topo):
        assert topo.neighbors("tor1") == ["s1", "core1"]

    def test_devices_by_type(self, topo):
        assert [d.name for d in topo.devices(DeviceType.SERVER)] == ["s1"]
        assert len(topo.devices()) == 3

    def test_counts(self, topo):
        counts = topo.counts()
        assert counts["server"] == 1
        assert counts["total"] == 3

    def test_counts_exclude_external_from_total(self, topo):
        topo.add_device("Internet", DeviceType.EXTERNAL)
        assert topo.counts()["total"] == 3

    def test_switching_devices(self, topo):
        names = {d.name for d in topo.switching_devices()}
        assert names == {"tor1", "core1"}

    def test_unknown_device_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.device("ghost")


class TestInterop:
    def test_to_networkx_simple(self, topo):
        g = topo.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.has_edge("s1", "tor1")

    def test_to_networkx_multigraph_keeps_parallels(self, topo):
        topo.add_link("s1", "core1", count=2)
        g = topo.to_networkx(multigraph=True)
        assert g.number_of_edges("s1", "core1") == 2

    def test_validate_connected(self, topo):
        topo.validate_connected()
        topo.add_device("island", DeviceType.SERVER)
        with pytest.raises(TopologyError, match="not connected"):
            topo.validate_connected()
        topo.validate_connected(among=["s1", "core1"])  # still fine
