"""§6.2.3 case study: pick independent clouds without seeing their data.

Alice wants a reliable multi-cloud key-value store.  Four providers run
Riak, MongoDB, Redis and CouchDB; none will reveal its software stack.
PIA runs the P-SOP commutative-encryption protocol so the providers
jointly compute the Jaccard similarity of their (normalised) package
sets — and nothing else.  The resulting ranking is the paper's Table 2.

Run:  python examples/multicloud_private_audit.py [psop|plaintext]
"""

from __future__ import annotations

import sys

from repro.analysis import software_case_study
from repro.swinventory import (
    PAPER_TABLE2_THREE_WAY,
    PAPER_TABLE2_TWO_WAY,
    stack_of,
)


def main(protocol: str = "psop") -> None:
    print(f"running the private audit with protocol={protocol!r} ...")
    two_way, three_way = software_case_study(protocol=protocol)

    print()
    print("Table 2 (two-way redundancy deployments):")
    print(f"  {'rank':<6}{'deployment':<22}{'paper':<9}{'measured':<9}")
    for entry in two_way.entries:
        paper = PAPER_TABLE2_TWO_WAY[tuple(entry.deployment)]
        print(
            f"  {entry.rank:<6}{entry.name:<22}{paper:<9.4f}"
            f"{entry.jaccard:<9.4f}"
        )
    print()
    print("Table 2 (three-way redundancy deployments):")
    print(f"  {'rank':<6}{'deployment':<31}{'paper':<9}{'measured':<9}")
    for entry in three_way.entries:
        paper = PAPER_TABLE2_THREE_WAY[tuple(entry.deployment)]
        print(
            f"  {entry.rank:<6}{entry.name:<31}{paper:<9.4f}"
            f"{entry.jaccard:<9.4f}"
        )
    print()
    best = two_way.best()
    stacks = " + ".join(stack_of(c) for c in best.deployment)
    print(f"recommendation: {best.name} ({stacks}) — most independent pair")
    if protocol == "psop":
        print(
            f"protocol traffic: {two_way.total_bytes / 1e6:.2f} MB across "
            f"{len(two_way.entries)} two-way audits; no provider revealed "
            f"a single package name."
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "psop")
