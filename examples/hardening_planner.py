"""From audit to action: rank mitigations before spending money.

An audit tells you the shared aggregation switch is a single point of
failure.  Should you buy a second switch, or a better one, or harden a
ToR instead?  This example chains three library layers:

1. SIA audit           -> where the risk groups are,
2. component importance -> which components carry the risk,
3. what-if analysis     -> which mitigation buys the largest
                           failure-probability reduction.

Run:  python examples/hardening_planner.py
"""

from __future__ import annotations

from repro import AuditSpec, SIAAuditor
from repro.analysis import Duplicate, Harden, evaluate_mitigations
from repro.core.importance import component_importance_ranking
from repro.depdb import DepDB, NetworkDependency
from repro.failures import combine_weighers, gill_network_weigher


def build_depdb() -> DepDB:
    """Two racks whose uplinks secretly share one aggregation switch."""
    db = DepDB()
    db.add(NetworkDependency("Rack1", "Internet", ("tor1", "agg-shared", "core1")))
    db.add(NetworkDependency("Rack2", "Internet", ("tor2", "agg-shared", "core2")))
    return db


def main() -> None:
    weigher = combine_weighers(gill_network_weigher(), default=0.08)
    auditor = SIAAuditor(build_depdb(), weigher=weigher)
    spec = AuditSpec(deployment="Rack1 & Rack2", servers=("Rack1", "Rack2"))

    audit = auditor.audit_deployment(spec)
    print("1) audit — top risk groups:")
    for entry in audit.top_risk_groups(3):
        print("  ", entry.describe())
    print(f"   Pr[deployment fails] = {audit.failure_probability:.4f}")
    print()

    graph = auditor.build_graph(spec)
    print("2) component importance (Birnbaum-ranked):")
    for entry in component_importance_ranking(graph)[:4]:
        print("  ", entry.describe())
    print()

    print("3) what-if — candidate mitigations, best first:")
    outcomes = evaluate_mitigations(
        graph,
        [
            Duplicate("device:agg-shared"),
            Harden("device:agg-shared", 0.02),
            Harden("device:tor1", 0.01),
            Duplicate("device:core1"),
        ],
    )
    for outcome in outcomes:
        print("  ", outcome.describe())
    best = outcomes[0]
    print()
    print(
        f"recommendation: {best.mitigation.describe()} "
        f"(-{best.relative_reduction:.0%} failure probability, "
        f"unexpected RGs {best.unexpected_before} -> "
        f"{best.unexpected_after})"
    )


if __name__ == "__main__":
    main()
