"""§6.2.1 case study: avoid correlated network failures in a data center.

Alice wants to replicate a service across two of 20 candidate racks in a
Benson-style data center.  INDaaS audits all 190 possible two-way
deployments with the failure-sampling algorithm and size-based ranking,
and cross-checks the recommendation with an exact formal analysis under
a uniform 0.1 device failure probability.

Run:  python examples/datacenter_network_audit.py [rounds]
"""

from __future__ import annotations

import sys

from repro.analysis import network_case_study


def main(rounds: int = 50_000) -> None:
    print(f"auditing 190 two-way rack deployments ({rounds} sampling rounds)")
    result = network_case_study(sampling_rounds=rounds)

    formal = result.formal
    print()
    print(f"candidate deployments : {formal.total}    (paper: 190)")
    print(f"without unexpected RGs: {len(formal.safe)}     (paper: 27)")
    print(
        f"random-pick safety    : {formal.safe_fraction:.0%}    (paper: 14%)"
    )
    print(
        f"audit recommendation  : {result.best_deployment}"
        f"    (paper: Rack5 & Rack29)"
    )
    best = formal.lowest_failure_probability()
    print(
        f"lowest Pr[failure]    : {best.name} "
        f"(Pr = {best.failure_probability:.4f})"
    )
    print()
    print("top of the audit report:")
    for position, audit in enumerate(
        result.report.ranked_deployments()[:5], start=1
    ):
        print(
            f"  {position}. {audit.deployment:<18} score={audit.score:.0f} "
            f"Pr[failure]={audit.failure_probability:.4f}"
        )
    print()
    worst = result.report.ranked_deployments()[-1]
    print(
        f"worst deployment: {worst.deployment} — unexpected RGs: "
        + ", ".join(
            "{" + ", ".join(sorted(e.events)) + "}"
            for e in worst.unexpected_risk_groups
        )
    )
    print()
    print("matches paper:", result.matches_paper)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50_000)
