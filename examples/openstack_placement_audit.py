"""§6.2.2 case study: catch a hidden VM co-location before going live.

A lab IaaS cloud runs Riak redundantly on two VMs.  OpenStack's
least-loaded placement silently puts both replicas on the same server;
the SIA audit surfaces {Server2} as a single point of failure, and
re-auditing all server pairs shows {Server2, Server3} is the only
deployment with no unexpected risk group.

Run:  python examples/openstack_placement_audit.py
"""

from __future__ import annotations

from repro.analysis import hardware_case_study


def main() -> None:
    result = hardware_case_study()

    print("OpenStack placements (least-loaded policy):")
    for vm in sorted(result.placements, key=lambda v: int(v[2:])):
        marker = "  <-- Riak replica" if vm in ("VM7", "VM8") else ""
        print(f"  {vm} -> {result.placements[vm]}{marker}")
    print()

    print("SIA audit of the Riak deployment (minimal RGs, size-ranked):")
    for entry in result.riak_audit.top_risk_groups(4):
        print("  ", entry.describe())
    unexpected = result.riak_audit.unexpected_risk_groups
    print(
        f"  => {len(unexpected)} unexpected risk group(s); redundancy "
        f"is an illusion: Server2 alone takes the service down."
    )
    print()

    print("re-audit of all server pairs (hardware + network):")
    for position, audit in enumerate(
        result.redeployment_report.ranked_deployments(), start=1
    ):
        flag = (
            "OK"
            if not audit.has_unexpected_risk_groups
            else "unexpected: "
            + ", ".join(
                "{" + ", ".join(sorted(e.events)) + "}"
                for e in audit.unexpected_risk_groups
            )
        )
        print(f"  {position}. {audit.deployment:<20} {flag}")
    print()
    print(
        f"recommended re-deployment: {result.recommended_pair} "
        f"(paper: Server2 & Server3)"
    )
    print("matches paper:", result.matches_paper)


if __name__ == "__main__":
    main()
