"""The paper's motivating outage, replayed through graph composition.

In the 2012 AWS event (§1), applications replicated across "independent"
EC2 instances failed together because every instance's storage secretly
depended on one EBS server.  This example builds the application's fault
graph with *placeholder* events for the rented services, composes in the
providers' own dependency graphs (§4.1.1 "composing individual
dependency graphs"), and shows the audit flipping from "looks fine" to
"size-1 risk group" once the hidden sharing is visible.

Run:  python examples/ebs_outage_composition.py
"""

from __future__ import annotations

from repro import FaultGraph, GateType, compose, minimal_risk_groups, rank_by_size


def application_graph() -> FaultGraph:
    """App replicated on two EC2 instances; each needs its EBS volume."""
    g = FaultGraph("webapp")
    g.add_basic_event("svc:ebs-volume-a", description="rented EBS volume A")
    g.add_basic_event("svc:ebs-volume-b", description="rented EBS volume B")
    g.add_basic_event("host:ec2-instance-1")
    g.add_basic_event("host:ec2-instance-2")
    g.add_gate(
        "instance-1", GateType.OR, ["host:ec2-instance-1", "svc:ebs-volume-a"]
    )
    g.add_gate(
        "instance-2", GateType.OR, ["host:ec2-instance-2", "svc:ebs-volume-b"]
    )
    g.add_gate("webapp", GateType.AND, ["instance-1", "instance-2"], top=True)
    return g


def ebs_volume_graph(volume: str, backing_server: str) -> FaultGraph:
    """What the provider knows: each volume lives on a backing server."""
    g = FaultGraph(f"ebs-{volume}")
    g.add_basic_event(f"ebs:{backing_server}")
    g.add_basic_event(f"ebs:volume-{volume}-metadata")
    g.add_gate(
        f"ebs-volume-{volume}",
        GateType.OR,
        [f"ebs:{backing_server}", f"ebs:volume-{volume}-metadata"],
        top=True,
    )
    return g


def audit(graph: FaultGraph, title: str) -> None:
    print(f"== {title} ==")
    groups = minimal_risk_groups(graph)
    for entry in rank_by_size(groups)[:4]:
        print("  ", entry.describe())
    singletons = [g for g in groups if len(g) == 1]
    if singletons:
        print(
            "  !! single points of failure despite redundancy:",
            ", ".join(sorted(e for s in singletons for e in s)),
        )
    else:
        print("  no unexpected risk groups at this level of visibility")
    print()


def main() -> None:
    app = application_graph()
    audit(app, "client view only (rented services opaque)")

    # What actually happened: both volumes on ebs-server-42.
    composed = compose(
        app,
        {
            "svc:ebs-volume-a": ebs_volume_graph("a", "ebs-server-42"),
            "svc:ebs-volume-b": ebs_volume_graph("b", "ebs-server-42"),
        },
        name="webapp+ebs",
    )
    audit(composed, "composed with the provider's dependency graphs")

    # The fix: volumes on distinct backing servers.
    fixed = compose(
        app,
        {
            "svc:ebs-volume-a": ebs_volume_graph("a", "ebs-server-42"),
            "svc:ebs-volume-b": ebs_volume_graph("b", "ebs-server-77"),
        },
        name="webapp+ebs-fixed",
    )
    audit(fixed, "after re-provisioning volume B onto another server")


if __name__ == "__main__":
    main()
