"""Periodic auditing: catch a risky re-cabling before it bites (§2).

The paper motivates periodic audits "to identify correlated failure
risks that configuration changes or evolution might introduce".  This
example simulates exactly that: an approved two-rack deployment, a
maintenance window that re-routes one rack through the other's
aggregation switch, and the scheduled INDaaS run that flags the new
single point of failure.

Run:  python examples/periodic_drift_audit.py
"""

from __future__ import annotations

from repro import AuditSpec
from repro.analysis import drift_report
from repro.depdb import DepDB, NetworkDependency
from repro.failures import (
    DEFAULT_HOST_FAILURE_PROBABILITY,
    combine_weighers,
    gill_network_weigher,
)


def monday_snapshot() -> DepDB:
    """The approved state: disjoint uplinks."""
    db = DepDB()
    db.add(NetworkDependency("Rack1", "Internet", ("tor1", "agg1", "core1")))
    db.add(NetworkDependency("Rack2", "Internet", ("tor2", "agg2", "core2")))
    return db


def friday_snapshot() -> DepDB:
    """After maintenance: agg2 was drained, Rack2 re-routed via agg1."""
    db = DepDB()
    db.add(NetworkDependency("Rack1", "Internet", ("tor1", "agg1", "core1")))
    db.add(NetworkDependency("Rack2", "Internet", ("tor2", "agg1", "core2")))
    return db


def main() -> None:
    spec = AuditSpec(deployment="Rack1 & Rack2", servers=("Rack1", "Rack2"))
    weigher = combine_weighers(
        gill_network_weigher(
            overrides={"tor": 0.05, "agg": 0.10, "core": 0.025}
        ),
        default=DEFAULT_HOST_FAILURE_PROBABILITY,
    )

    report = drift_report(
        monday_snapshot(), friday_snapshot(), spec, weigher=weigher
    )
    print("configuration diff:")
    print(report.diff.render_text())
    print()
    print("periodic audit verdict:")
    print(report.render_text())
    print()
    print(
        f"failure probability: {report.failure_probability_before:.4f} "
        f"-> {report.failure_probability_after:.4f}"
    )
    if report.regressed:
        print(
            "ALERT: the change introduced a correlated-failure mode; "
            "roll back or re-route before the next incident does it for you."
        )


if __name__ == "__main__":
    main()
