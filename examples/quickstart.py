"""Quickstart: audit the independence of a small redundant deployment.

Walks the paper's core loop end to end on the Figure 2/3 sample storage
system: collect dependency data, build the fault graph, find and rank
risk groups, and print the auditing report.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AuditSpec,
    ComponentSets,
    FaultSets,
    SIAAuditor,
    minimal_risk_groups,
    rank_by_probability,
    top_event_probability,
)
from repro.acquisition import (
    HardwareInventoryCollector,
    NetworkDependencyCollector,
)
from repro.depdb import DepDB, SoftwareDependency
from repro.topology import StorageSamplePlan, storage_sample


def figure_4_warmup() -> None:
    """The paper's worked example (Figure 4b): two sources, one shared
    component, weighted analysis."""
    print("== Figure 4 warm-up ==")
    sets = ComponentSets.from_mapping({"E1": ["A1", "A2"], "E2": ["A2", "A3"]})
    graph = sets.to_fault_graph()
    groups = minimal_risk_groups(graph)
    print("minimal risk groups:", [sorted(g) for g in groups])

    weighted = FaultSets.from_mapping(
        {"E1": {"A1": 0.1, "A2": 0.2}, "E2": {"A2": 0.2, "A3": 0.3}}
    )
    probabilities = weighted.probabilities()
    top = top_event_probability(groups, probabilities)
    print(f"Pr(deployment fails) = {top:.3f}   (paper: 0.224)")
    for entry in rank_by_probability(groups, probabilities):
        print("  ", entry.describe())
    print()


def storage_sample_audit() -> None:
    """Audit S1+S2 (shared ToR, shared libc6) vs S1+S3 (separate racks)."""
    print("== Figure 2 sample storage system ==")
    plan = StorageSamplePlan()
    topology = storage_sample(plan)

    depdb = DepDB()
    static = {s: list(plan.routes(s)) for s in plan.servers}
    NetworkDependencyCollector(
        topology, servers=list(plan.servers), static_routes=static
    ).collect_into(depdb)
    HardwareInventoryCollector(plan.hardware).collect_into(depdb)
    for server, programs in plan.software.items():
        for program, packages in programs.items():
            depdb.add(SoftwareDependency(program, server, packages))

    auditor = SIAAuditor(depdb)
    base = AuditSpec(deployment="probe", servers=("S1", "S2"), top_n=5)
    report = auditor.compare_combinations(
        base, ["S1", "S2", "S3"], ways=2, title="two-way deployments"
    )
    print(report.render_text(top_rgs=4))
    print("=>", report.summary())


if __name__ == "__main__":
    figure_4_warmup()
    storage_sample_audit()
